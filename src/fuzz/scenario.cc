#include "scenario.hh"

#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace mda::fuzz
{

namespace
{

/** Valid capacity tiers per hierarchy position. Every entry keeps
 *  (size / lineBytes) and (size / tileBytes) divisible by each ways
 *  choice below, so any tier works for both LineCache and TileCache
 *  granularity. */
constexpr std::uint64_t upperTiers[] = {512, 1024, 2048};
constexpr std::uint64_t middleTiers[] = {1024, 2048, 4096};
constexpr std::uint64_t llcTiers[] = {2048, 4096, 8192, 16384};

unsigned
drawWays(Rng &rng, std::uint64_t size_bytes, bool tile_capable)
{
    // Tile frames (512 B) are the coarser granularity: ways must
    // divide the frame count for the 2P2L LLC to be constructible.
    std::uint64_t frames =
        size_bytes / (tile_capable ? tileBytes : lineBytes);
    unsigned ways = 1u << rng.below(3); // 1, 2, or 4
    while (ways > 1 && frames % ways != 0)
        ways /= 2;
    return ways;
}

LevelSpec
drawLevel(Rng &rng, std::uint64_t size_bytes, bool tile_capable)
{
    LevelSpec spec;
    spec.sizeBytes = size_bytes;
    spec.ways = drawWays(rng, size_bytes, tile_capable);
    spec.mshrs = 2u << rng.below(3);          // 2, 4, or 8
    spec.targetsPerMshr = 1u << rng.below(3); // 1, 2, or 4
    spec.writeBufferSize = 2u << rng.below(3);
    return spec;
}

} // namespace

Scenario
generateScenario(std::uint64_t seed, const GenLimits &limits)
{
    Rng rng(seed);
    Scenario s;
    s.seed = seed;
    FuzzConfig &cfg = s.config;

    // Hierarchy shape: depth 1 is a bare LLC, 2 adds an L1, 3 the
    // full L1/L2/LLC chain. The LLC tier must be tile-capable (it
    // becomes a TileCache under the 2P2L designs).
    unsigned depth = 1 + static_cast<unsigned>(rng.below(3));
    if (depth >= 2)
        cfg.levels.push_back(drawLevel(
            rng, upperTiers[rng.below(std::size(upperTiers))], false));
    if (depth >= 3)
        cfg.levels.push_back(drawLevel(
            rng, middleTiers[rng.below(std::size(middleTiers))],
            false));
    cfg.levels.push_back(drawLevel(
        rng, llcTiers[rng.below(std::size(llcTiers))], true));

    cfg.tiles = 2 + static_cast<unsigned>(
                        rng.below(std::max(1u, limits.maxTiles - 1)));
    cfg.gatherHits = rng.chance(0.25);
    cfg.tileWritePenalty = static_cast<Cycles>(rng.below(5));

    // Occasionally interleave the timed and functional paths the way
    // a sampled run does; short periods maximize boundary crossings.
    if (rng.chance(0.3)) {
        cfg.samplePeriod = 4ull << rng.below(3); // 4, 8, or 16
        cfg.sampleWindow = 1 + rng.below(cfg.samplePeriod / 2);
    }

    // The 1P1L baseline has no column transfers, so it joins the
    // cross-design comparison only when the trace keeps vector ops in
    // the row direction (scalar column *preferences* are fine — the
    // baseline coerces them to rows, exactly as its compiler would).
    bool row_vectors_only = rng.chance(0.3);
    cfg.prefetch = row_vectors_only && rng.chance(0.5);
    if (row_vectors_only)
        cfg.designs.push_back(DesignPoint::D0_1P1L);
    cfg.designs.push_back(DesignPoint::D1_1P2L);
    cfg.designs.push_back(DesignPoint::D1_1P2L_SameSet);
    cfg.designs.push_back(DesignPoint::D2_2P2L);
    cfg.designs.push_back(DesignPoint::D2_2P2L_Dense);

    // Aliased hot words: a small pool of (tile, row, col) coordinates
    // revisited often, so intersecting rows and columns keep fighting
    // over the same words (duplication, Fig. 9 evictions, deferrals).
    struct Coord { std::uint64_t tile; unsigned r, c; };
    std::vector<Coord> hot(4 + rng.below(5));
    for (auto &h : hot) {
        h.tile = rng.below(cfg.tiles);
        h.r = static_cast<unsigned>(rng.below(tileLines));
        h.c = static_cast<unsigned>(rng.below(lineWords));
    }
    auto draw_coord = [&]() -> Coord {
        if (rng.chance(0.35))
            return hot[rng.below(hot.size())];
        return Coord{rng.below(cfg.tiles),
                     static_cast<unsigned>(rng.below(tileLines)),
                     static_cast<unsigned>(rng.below(lineWords))};
    };

    unsigned min_ops = std::min(limits.minOps, limits.maxOps);
    unsigned ops = min_ops +
                   static_cast<unsigned>(
                       rng.below(limits.maxOps - min_ops + 1));
    while (s.trace.size() < ops) {
        // Occasionally a burst of concurrent reads (MSHR coalescing,
        // deferral, and response paths under pressure). Sampled
        // traces stay serialized: a functional op needs idle timing.
        bool batch = cfg.samplePeriod == 0 && rng.chance(0.08);
        unsigned count =
            batch ? 3 + static_cast<unsigned>(rng.below(14)) : 1;
        for (unsigned k = 0; k < count && s.trace.size() < ops; ++k) {
            TraceOp op;
            Coord at = draw_coord();
            op.orient = rng.chance(0.5) ? Orientation::Row
                                        : Orientation::Col;
            op.vector = rng.chance(0.4);
            if (op.vector && row_vectors_only)
                op.orient = Orientation::Row;
            op.write = !batch && rng.chance(0.4);
            op.concurrent = batch;
            op.addr = tileBase(at.tile) + at.r * lineBytes +
                      at.c * wordBytes;
            s.trace.push_back(op);
        }
    }
    return s;
}

bool
designFromName(const std::string &name, DesignPoint &out)
{
    for (DesignPoint d :
         {DesignPoint::D0_1P1L, DesignPoint::D1_1P2L,
          DesignPoint::D1_1P2L_SameSet, DesignPoint::D2_2P2L,
          DesignPoint::D2_2P2L_Dense, DesignPoint::D3_2P2L_L1}) {
        if (name == designName(d)) {
            out = d;
            return true;
        }
    }
    return false;
}

std::string
reproText(const Scenario &s)
{
    std::ostringstream os;
    os << "mda_fuzz-repro-v1\n";
    os << "seed " << s.seed << "\n";
    os << "designs";
    for (DesignPoint d : s.config.designs)
        os << " " << designName(d);
    os << "\n";
    os << "tiles " << s.config.tiles << "\n";
    os << "gather " << (s.config.gatherHits ? 1 : 0) << "\n";
    os << "prefetch " << (s.config.prefetch ? 1 : 0) << "\n";
    os << "write-penalty " << s.config.tileWritePenalty << "\n";
    if (s.config.samplePeriod > 0) {
        os << "sample " << s.config.samplePeriod << " "
           << s.config.sampleWindow << "\n";
    }
    os << "levels " << s.config.levels.size() << "\n";
    for (const LevelSpec &lvl : s.config.levels) {
        os << "level " << lvl.sizeBytes << " " << lvl.ways << " "
           << lvl.mshrs << " " << lvl.targetsPerMshr << " "
           << lvl.writeBufferSize << "\n";
    }
    os << "ops " << s.trace.size() << "\n";
    for (const TraceOp &op : s.trace) {
        os << "op " << (op.vector ? "V" : "S") << " "
           << (op.write ? "W" : "R") << " " << orientName(op.orient)
           << " " << op.addr << " " << (op.concurrent ? "c" : "s")
           << "\n";
    }
    return os.str();
}

Scenario
parseRepro(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    auto bad = [](const std::string &what) {
        fatal("malformed repro: %s", what.c_str());
    };
    if (!std::getline(is, line) || line != "mda_fuzz-repro-v1")
        bad("missing mda_fuzz-repro-v1 header");

    Scenario s;
    std::size_t expect_levels = 0, expect_ops = 0;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "seed") {
            if (!(ls >> s.seed))
                bad("bad seed line");
        } else if (key == "designs") {
            std::string name;
            while (ls >> name) {
                DesignPoint d;
                if (!designFromName(name, d))
                    bad("unknown design '" + name + "'");
                s.config.designs.push_back(d);
            }
            if (s.config.designs.empty())
                bad("empty design list");
        } else if (key == "tiles") {
            if (!(ls >> s.config.tiles) || s.config.tiles == 0)
                bad("bad tiles line");
        } else if (key == "gather") {
            int v = 0;
            if (!(ls >> v))
                bad("bad gather line");
            s.config.gatherHits = (v != 0);
        } else if (key == "prefetch") {
            int v = 0;
            if (!(ls >> v))
                bad("bad prefetch line");
            s.config.prefetch = (v != 0);
        } else if (key == "write-penalty") {
            if (!(ls >> s.config.tileWritePenalty))
                bad("bad write-penalty line");
        } else if (key == "sample") {
            if (!(ls >> s.config.samplePeriod >>
                  s.config.sampleWindow) ||
                s.config.samplePeriod == 0 ||
                s.config.sampleWindow == 0 ||
                s.config.sampleWindow >= s.config.samplePeriod)
                bad("bad sample line");
        } else if (key == "levels") {
            if (!(ls >> expect_levels) || expect_levels == 0 ||
                expect_levels > 3)
                bad("bad levels count");
        } else if (key == "level") {
            LevelSpec lvl;
            if (!(ls >> lvl.sizeBytes >> lvl.ways >> lvl.mshrs >>
                  lvl.targetsPerMshr >> lvl.writeBufferSize) ||
                lvl.ways == 0 || lvl.mshrs == 0 ||
                lvl.targetsPerMshr == 0 || lvl.writeBufferSize == 0 ||
                lvl.sizeBytes < lineBytes ||
                lvl.sizeBytes % lineBytes != 0)
                bad("bad level line");
            s.config.levels.push_back(lvl);
        } else if (key == "ops") {
            if (!(ls >> expect_ops))
                bad("bad ops count");
        } else if (key == "op") {
            TraceOp op;
            std::string kind, rw, orient, conc;
            if (!(ls >> kind >> rw >> orient >> op.addr >> conc))
                bad("bad op line");
            if (kind != "S" && kind != "V")
                bad("op kind must be S or V");
            if (rw != "R" && rw != "W")
                bad("op must be R or W");
            if (orient != "row" && orient != "col")
                bad("op orientation must be row or col");
            if (conc != "c" && conc != "s")
                bad("op issue mode must be c or s");
            op.vector = (kind == "V");
            op.write = (rw == "W");
            op.orient = (orient == "row") ? Orientation::Row
                                          : Orientation::Col;
            op.concurrent = (conc == "c");
            if (op.write && op.concurrent)
                bad("writes must be serialized");
            s.trace.push_back(op);
        } else {
            bad("unknown key '" + key + "'");
        }
    }
    if (s.config.levels.size() != expect_levels)
        bad("level count mismatch");
    if (s.trace.size() != expect_ops)
        bad("op count mismatch");
    if (s.config.designs.empty())
        bad("no designs");
    if (s.config.samplePeriod > 0) {
        for (const TraceOp &op : s.trace)
            if (op.concurrent)
                bad("sampled traces must be serialized");
    }
    return s;
}

void
writeReproFile(const std::string &path, const Scenario &s)
{
    // MDA_LINT_ALLOW(TRC-1): text repro file, not a binary trace.
    std::ofstream os(path);
    if (!os)
        fatal("cannot write repro file: %s", path.c_str());
    os << reproText(s);
}

Scenario
readReproFile(const std::string &path)
{
    // MDA_LINT_ALLOW(TRC-1): text repro file, not a binary trace.
    std::ifstream is(path);
    if (!is)
        fatal("cannot read repro file: %s", path.c_str());
    std::ostringstream text;
    text << is.rdbuf();
    return parseRepro(text.str());
}

} // namespace mda::fuzz
