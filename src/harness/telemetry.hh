/**
 * @file
 * LatencyAccountant: a probe listener that decomposes each request's
 * end-to-end latency into per-stage, per-level, per-orientation
 * components.
 *
 * Every non-writeback packet is served at exactly one level of the
 * hierarchy (CPU demand packets at the L1, L1 fill requests at the
 * L2, and so on down to memory), so each level's probes partition the
 * packet's lifetime exactly:
 *
 *   queue   = accepted.when - pkt->issueTick   (upstream retry wait)
 *   lookup  = mshrQueued.when - accepted.when  (tag + defer wait;
 *             for hits, responded.when - accepted.when)
 *   mshr    = responded.when - mshrQueued.when (fill round trip;
 *             zero for hits)
 *   deliver = responded.delay                  (data return)
 *
 * and queue + lookup + mshr + deliver == delivery tick - issueTick —
 * the same quantity the requester's own round-trip distribution
 * samples. The memory controller maps onto the same shape (issued
 * plays mshrQueued's role: lookup = controller queue wait, deliver =
 * bank access + bus). The accountant samples all four stages once per
 * request into per-level x orientation x stage Distributions named
 * "telemetry.<level>.<row|col>.<stage>", so per-stage counts equal
 * request counts and sums add up exactly.
 *
 * Constructed only when SystemConfig::telemetry is set: its stats do
 * not exist otherwise, and with no listeners attached the probes cost
 * one branch each — default --stats-json output stays byte-identical.
 */

#ifndef MDA_HARNESS_TELEMETRY_HH
#define MDA_HARNESS_TELEMETRY_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/probe.hh"
#include "sim/stats.hh"

namespace mda::telemetry
{

/** Latency pipeline stages (see file comment for definitions). */
enum class Stage : unsigned
{
    Queue = 0,
    Lookup,
    Mshr,
    Deliver,
};

constexpr unsigned numStages = 4;

constexpr const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Queue: return "queue";
      case Stage::Lookup: return "lookup";
      case Stage::Mshr: return "mshr";
      case Stage::Deliver: return "deliver";
    }
    return "?";
}

class LatencyAccountant
{
  public:
    /**
     * Attach to the lifecycle probes of @p levels (e.g. {"l1", "l2",
     * "mem"}) and register the breakdown stats with @p sg. Every
     * level must already have registered its probes with @p pm.
     */
    LatencyAccountant(probe::ProbeManager &pm, stats::StatGroup &sg,
                      const std::vector<std::string> &levels);

    /** Requests still open (accepted, not yet responded). */
    std::size_t openRequests() const { return _open.size(); }

  private:
    /** Per-level stage distributions, split by orientation. */
    struct LevelStats
    {
        std::string name;
        // [orient][stage]; orient 0 = row, 1 = col.
        std::unique_ptr<stats::Distribution> dist[2][numStages];
        stats::Scalar requests;
    };

    /** One in-flight request's timeline. */
    struct Open
    {
        unsigned level = 0;
        Tick issue = 0;
        Tick accept = 0;
        Tick mshrAt = 0;
        bool hasMshr = false;
    };

    void onAccepted(unsigned level, const probe::PacketEvent &ev);
    void onMshrQueued(const probe::PacketEvent &ev);
    void onResponded(const probe::PacketEvent &ev);

    std::vector<std::unique_ptr<LevelStats>> _levels;
    std::map<std::uint64_t, Open> _open; ///< keyed by packet id
    std::vector<probe::ProbeListener> _listeners;
};

} // namespace mda::telemetry

#endif // MDA_HARNESS_TELEMETRY_HH
