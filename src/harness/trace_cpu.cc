#include "trace_cpu.hh"

#include "sim/debug.hh"
#include "sim/trace_event.hh"

namespace mda
{

TraceCpu::TraceCpu(const std::string &obj_name, EventQueue &eq,
                   stats::StatGroup &sg, trace::TraceSource &src,
                   MemDevice &l1, const CpuParams &params)
    : SimObject(obj_name, eq, sg), _src(src), _l1(l1), _params(params)
{
    regScalar("ops", &_ops, "memory operations issued");
    regScalar("vectorOps", &_vectorOps, "SIMD operations issued");
    regScalar("readOps", &_readOps, "read operations");
    regScalar("writeOps", &_writeOps, "write operations");
    regScalar("colOps", &_colOps, "column-preference operations");
    regScalar("stallWindowFull", &_stallWindowFull,
              "issue stalls: outstanding window full");
    regScalar("stallRetry", &_stallRetry,
              "issue stalls: L1 busy (retry)");
    regScalar("computeCycles", &_computeCycles,
              "non-memory cycles consumed");
    regScalar("checkFailures", &_checkFailures,
              "functional check mismatches");
    regDistribution("loadLatency", &_loadLatency,
                    "demand access round-trip latency");
}

void
TraceCpu::regProbes(probe::ProbeManager &pm)
{
    pm.reg(name() + ".issued", &_probes.issued);
    pm.reg(name() + ".retired", &_probes.retired);
}

void
TraceCpu::start()
{
    scheduleIssue(curTick());
}

void
TraceCpu::scheduleIssue(Tick when)
{
    if (_issueScheduled)
        return;
    _issueScheduled = true;
    eventq().schedule(when, [this] {
        _issueScheduled = false;
        issue();
    }, EventPriority::Cpu);
}

PacketPtr
TraceCpu::makePacket(const compiler::TraceOp &op)
{
    PacketPtr pkt;
    MemCmd cmd = op.isWrite ? MemCmd::Write : MemCmd::Read;
    if (op.isVector) {
        OrientedLine line = OrientedLine::containing(op.addr, op.orient);
        pkt = Packet::makeVector(cmd, line, op.pc, curTick(),
                                 packetPool());
        pkt->wordMask = op.wordMask;
    } else {
        pkt = Packet::makeScalar(cmd, op.addr, op.orient, op.pc,
                                 curTick(), packetPool());
    }

    if (_params.checkData) {
        if (op.isWrite) {
            // Unique values, applied to the reference in issue order.
            if (op.isVector) {
                OrientedLine line = pkt->line();
                for (unsigned k = 0; k < lineWords; ++k) {
                    if (!(op.wordMask & (1u << k)))
                        continue;
                    std::uint64_t v = _nextValue++;
                    pkt->setWord(k, v);
                    _reference.writeWord(line.wordAddr(k), v);
                }
                pkt->wordMask = op.wordMask;
            } else {
                std::uint64_t v = _nextValue++;
                pkt->setWord(0, v);
                _reference.writeWord(pkt->addr, v);
            }
        } else {
            // Snapshot expected read values at issue.
            std::vector<std::uint64_t> expected;
            if (op.isVector) {
                OrientedLine line = pkt->line();
                for (unsigned k = 0; k < lineWords; ++k) {
                    expected.push_back(
                        (op.wordMask & (1u << k))
                            ? _reference.readWord(line.wordAddr(k))
                            : 0);
                }
            } else {
                expected.push_back(_reference.readWord(pkt->addr));
            }
            _expected.emplace(pkt->id, std::move(expected));
        }
    }
    return pkt;
}

std::uint64_t
TraceCpu::fastForward(std::uint64_t count)
{
    mda_assert(_outstanding == 0 && !_blockedPkt && !_waitingRetry,
               "fast-forward with timed work in flight");
    std::uint64_t applied = 0;
    while (applied < count) {
        if (!_havePending) {
            if (!_src.next(_pendingOp)) {
                _traceDone = true;
                _finishTick = curTick();
                break;
            }
            _havePending = true;
        }
        FunctionalReq req;
        req.line = OrientedLine::containing(_pendingOp.addr,
                                            _pendingOp.orient);
        req.addr = _pendingOp.addr;
        req.pc = _pendingOp.pc;
        req.isLine = _pendingOp.isVector;
        req.wordMask =
            _pendingOp.isVector ? _pendingOp.wordMask : 0x01;
        req.isWrite = _pendingOp.isWrite;
        _l1.functionalAccess(req);
        _havePending = false;
        ++applied;
    }
    _ffOps += applied;
    return applied;
}

void
TraceCpu::issue()
{
    // A spent window budget silences the issue path (sampling): the
    // in-flight window drains and the event queue goes quiescent.
    while (_issueBudget != 0) {
        if (!_havePending) {
            if (!_src.next(_pendingOp)) {
                _traceDone = true;
                if (_outstanding == 0)
                    _finishTick = curTick();
                return;
            }
            _havePending = true;
            // Dependent compute delay before this op can issue.
            if (_pendingOp.computeCycles > 0) {
                _computeCycles += _pendingOp.computeCycles;
                scheduleIssue(curTick() + _pendingOp.computeCycles);
                return;
            }
        }
        if (_outstanding >= _params.maxOutstanding) {
            ++_stallWindowFull;
            return; // resumed by the next response
        }
        // Re-send a previously rejected packet as-is so the checker's
        // reference updates are applied exactly once.
        PacketPtr pkt = _blockedPkt ? std::move(_blockedPkt)
                                    : makePacket(_pendingOp);
        // tryRequest consumes the packet, so anything the observers
        // need is copied out first — only while they are watching.
        const bool observed = MDA_OBSERVED();
        std::uint64_t pkt_id = 0;
        MemCmd pkt_cmd = MemCmd::Read;
        Addr pkt_addr = 0;
        if (MDA_UNLIKELY(observed)) {
            pkt_id = pkt->id;
            pkt_cmd = pkt->cmd;
            pkt_addr = pkt->addr;
        }
        // Accepted packets survive inside the L1's scheduled lookup,
        // so a pointer captured here stays valid for the probe below.
        const Packet *sent = pkt.get();
        if (!_l1.tryRequest(pkt)) {
            ++_stallRetry;
            _blockedPkt = std::move(pkt);
            _waitingRetry = true;
            return;
        }
        MDA_PROBE(_probes.issued,
                  probe::PacketEvent{sent, curTick(), 0});
        if (MDA_UNLIKELY(observed)) {
            DPRINTF(TraceCpu,
                    "issue %s %#llx id %llu (%u outstanding)",
                    cmdName(pkt_cmd), (unsigned long long)pkt_addr,
                    (unsigned long long)pkt_id, _outstanding + 1);
            if (trace::on()) {
                trace::log().asyncBegin(name(), cmdName(pkt_cmd),
                                        pkt_id, curTick());
            }
        }
        ++_ops;
        ++_outstanding;
        --_issueBudget;
        if (MDA_UNLIKELY(_issueBudget == _hookAt) && _budgetHook) {
            // Detach first: the hook may install its successor.
            auto hook = std::move(_budgetHook);
            _budgetHook = nullptr;
            hook();
        }
        if (_pendingOp.isVector)
            ++_vectorOps;
        (_pendingOp.isWrite ? _writeOps : _readOps) += 1;
        if (_pendingOp.orient == Orientation::Col)
            ++_colOps;
        _havePending = false;
        // One issue per cycle.
        scheduleIssue(curTick() + 1);
        return;
    }
}

void
TraceCpu::recvResponse(PacketPtr pkt)
{
    mda_assert(_outstanding > 0, "response with nothing outstanding");
    --_outstanding;
    if (MDA_OBSERVED()) {
        DPRINTF(TraceCpu,
                "response %s %#llx id %llu after %llu cycles",
                cmdName(pkt->cmd), (unsigned long long)pkt->addr,
                (unsigned long long)pkt->id,
                (unsigned long long)(curTick() - pkt->issueTick));
        if (trace::on()) {
            trace::log().asyncEnd(name(), cmdName(pkt->cmd), pkt->id,
                                  curTick());
        }
    }
    MDA_PROBE(_probes.retired,
              probe::PacketEvent{pkt.get(), curTick(), 0});
    _loadLatency.sample(
        static_cast<double>(curTick() - pkt->issueTick));

    if (_params.checkData && pkt->cmd == MemCmd::Read) {
        auto it = _expected.find(pkt->id);
        mda_assert(it != _expected.end(), "unexpected read response");
        const auto &expected = it->second;
        if (pkt->isLine()) {
            for (unsigned k = 0; k < lineWords; ++k) {
                if (!(pkt->wordMask & (1u << k)))
                    continue;
                if (pkt->word(k) != expected[k]) {
                    ++_checkFailures;
                    warn("data mismatch at %#llx word %u: got %llu "
                         "want %llu",
                         (unsigned long long)pkt->addr, k,
                         (unsigned long long)pkt->word(k),
                         (unsigned long long)expected[k]);
                }
            }
        } else if (pkt->word(0) != expected[0]) {
            ++_checkFailures;
            warn("data mismatch at %#llx: got %llu want %llu",
                 (unsigned long long)pkt->addr,
                 (unsigned long long)pkt->word(0),
                 (unsigned long long)expected[0]);
        }
        _expected.erase(it);
    }

    if (_traceDone && _outstanding == 0) {
        _finishTick = curTick();
        return;
    }
    if (!_waitingRetry)
        scheduleIssue(curTick());
}

void
TraceCpu::recvRetry()
{
    _waitingRetry = false;
    scheduleIssue(curTick());
}

} // namespace mda
