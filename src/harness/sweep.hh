/**
 * @file
 * Thread-pool sweep executor for figure/ablation benches.
 *
 * Every paper figure is a sweep over independent (workload, design,
 * capacity) cells; each cell builds its own System with a private
 * EventQueue and seeded Rng, so cells can run concurrently. The
 * Executor owns a bounded pool of worker threads and distributes cell
 * indices over it; results are stored by index, so output order is
 * the input order regardless of which worker finishes first.
 *
 * Determinism contract: a cell's result depends only on its RunSpec
 * (including its seed), never on the job count or completion order.
 * Callers keep that contract by deriving every per-cell seed from the
 * spec, not from shared counters or wall-clock state.
 *
 * Tracing (--trace-out, --debug-flags) records into process-wide
 * sinks and is therefore restricted to --jobs 1; forEach() refuses a
 * parallel sweep while an observer is attached rather than interleave
 * trace lines from unrelated cells.
 */

#ifndef MDA_HARNESS_SWEEP_HH
#define MDA_HARNESS_SWEEP_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "runner.hh"

namespace mda::sweep
{

/** Resolve a --jobs request: 0 means hardware concurrency (at least
 *  1 even when the hardware cannot be queried). */
unsigned resolveJobs(unsigned requested);

/** Bounded worker pool executing sweep cells by index. */
class Executor
{
  public:
    /** @param jobs Worker count; 0 resolves to hardware concurrency. */
    explicit Executor(unsigned jobs = 0);
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    unsigned jobs() const { return _jobs; }

    /**
     * Run fn(0) .. fn(count-1) across the pool and block until every
     * task finished. Tasks are pulled from a shared atomic cursor, so
     * a single worker executes them in index order.
     *
     * If any task throws, every remaining task still runs; afterwards
     * the exception from the lowest failing index is rethrown — the
     * same exception a sequential loop would surface first, so
     * propagation is deterministic across job counts.
     *
     * Refuses (fatal) a parallel run while tracing or debug flags are
     * active: those record into process-wide sinks. Not reentrant;
     * calling forEach from inside a task deadlocks by design.
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();

    const unsigned _jobs;
    std::vector<std::thread> _threads;

    std::mutex _mutex;
    std::condition_variable _wake;
    std::condition_variable _done;
    bool _shutdown = false;
    std::uint64_t _generation = 0;
    std::size_t _active = 0;

    const std::function<void(std::size_t)> *_fn = nullptr;
    std::size_t _count = 0;
    std::atomic<std::size_t> _next{0};

    /** (index, exception) for failed tasks of the current batch. */
    std::vector<std::pair<std::size_t, std::exception_ptr>> _errors;
};

/** Run every spec through a pool of @p jobs workers; results are
 *  returned in input order. */
std::vector<RunResult> runAll(const std::vector<RunSpec> &specs,
                              unsigned jobs = 0);

} // namespace mda::sweep

#endif // MDA_HARNESS_SWEEP_HH
