#include "sweep.hh"

#include <algorithm>

#include "sim/debug.hh"
#include "sim/logging.hh"
#include "sim/trace_event.hh"

namespace mda::sweep
{

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

Executor::Executor(unsigned jobs) : _jobs(resolveJobs(jobs))
{
    _threads.reserve(_jobs);
    for (unsigned t = 0; t < _jobs; ++t)
        _threads.emplace_back([this] { workerLoop(); });
}

Executor::~Executor()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _shutdown = true;
    }
    _wake.notify_all();
    for (auto &thread : _threads)
        thread.join();
}

void
Executor::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wake.wait(lock, [&] {
                return _shutdown || _generation != seen;
            });
            if (_shutdown)
                return;
            seen = _generation;
        }
        for (;;) {
            std::size_t idx =
                _next.fetch_add(1, std::memory_order_relaxed);
            if (idx >= _count)
                break;
            try {
                (*_fn)(idx);
            } catch (...) {
                std::lock_guard<std::mutex> lock(_mutex);
                _errors.emplace_back(idx, std::current_exception());
            }
        }
        {
            std::lock_guard<std::mutex> lock(_mutex);
            if (--_active == 0)
                _done.notify_all();
        }
    }
}

void
Executor::forEach(std::size_t count,
                  const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (_jobs > 1 && obs::hot) {
        fatal("tracing records into a process-wide log; rerun with "
              "--jobs 1 (or unset --trace-out/--debug-flags/"
              "MDA_DEBUG_FLAGS) for traced sweeps");
    }

    std::exception_ptr first_error;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _fn = &fn;
        _count = count;
        _next.store(0, std::memory_order_relaxed);
        _errors.clear();
        _active = _threads.size();
        ++_generation;
        _wake.notify_all();
        _done.wait(lock, [&] { return _active == 0; });
        _fn = nullptr;
        if (!_errors.empty()) {
            auto it = std::min_element(
                _errors.begin(), _errors.end(),
                [](const auto &a, const auto &b) {
                    return a.first < b.first;
                });
            first_error = it->second;
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<RunResult>
runAll(const std::vector<RunSpec> &specs, unsigned jobs)
{
    std::vector<RunResult> results(specs.size());
    Executor pool(jobs);
    pool.forEach(specs.size(), [&](std::size_t idx) {
        results[idx] = runOne(specs[idx]);
    });
    return results;
}

} // namespace mda::sweep
