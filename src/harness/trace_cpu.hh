/**
 * @file
 * TraceCpu: the timing CPU model driving compiled-kernel traces.
 *
 * An approximation of the paper's out-of-order x86 core that keeps
 * what matters for the evaluation: one memory operation issued per
 * cycle, compute delays between dependent operations, and a bounded
 * window of outstanding accesses (memory-level parallelism). The
 * trace is pulled through a trace::TraceSource — live compiler
 * generation, a capturing tee, or a replayed file — and nothing is
 * ever materialized.
 *
 * With functional checking enabled, writes carry unique values and a
 * flat reference model is updated in issue (program) order; every
 * read response is compared against the reference snapshot taken at
 * issue. The cache hierarchy's ordering rules make this exact.
 */

#ifndef MDA_HARNESS_TRACE_CPU_HH
#define MDA_HARNESS_TRACE_CPU_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/backing_store.hh"
#include "sim/port.hh"
#include "sim/probe.hh"
#include "sim/sim_object.hh"
#include "trace/trace_source.hh"

namespace mda
{

/** CPU model parameters. */
struct CpuParams
{
    /** Maximum in-flight memory operations (MLP window). */
    unsigned maxOutstanding = 16;

    /** Verify read data against a reference model (slower). */
    bool checkData = false;
};

/** Trace-driven CPU. */
class TraceCpu : public SimObject, public MemClient
{
  public:
    TraceCpu(const std::string &name, EventQueue &eq,
             stats::StatGroup &sg, trace::TraceSource &src,
             MemDevice &l1, const CpuParams &params);

    /** Schedule the first issue event. */
    void start();

    /** Trace exhausted and every response received. */
    bool done() const { return _traceDone && _outstanding == 0; }

    /** Tick at which done() became true. */
    Tick finishTick() const { return _finishTick; }

    /** Detected data mismatches (checker mode). */
    std::uint64_t checkFailures() const
    {
        return static_cast<std::uint64_t>(_checkFailures.value());
    }

    /**
     * Cap further timed issues at @p n operations (a sampling
     * measured window). When the budget is spent, issue() goes
     * quiescent — in-flight responses drain and the event queue
     * empties — without marking the trace done. The default (~0)
     * never exhausts.
     */
    void setIssueBudget(std::uint64_t n) { _issueBudget = n; }

    /**
     * Fire @p hook once, the moment the issue budget drops to
     * @p remaining — i.e. mid-run, with the pipeline hot. The hook is
     * detached before it is invoked, so it may re-arm a successor.
     * Sampled simulation uses this to open and close the measured
     * window between the detailed-warming ops and the drain, so
     * neither boundary's in-flight traffic lands in the deltas.
     */
    void
    setBudgetHook(std::uint64_t remaining, std::function<void()> hook)
    {
        _hookAt = remaining;
        _budgetHook = std::move(hook);
    }

    /**
     * Functionally apply up to @p count trace operations through the
     * hierarchy's functionalAccess() path: state effects only, no
     * events, no statistics. Returns the number applied (short on
     * trace exhaustion, which marks the trace done).
     *
     * @pre The timed machinery is idle: no outstanding responses, no
     *      blocked packet, no pending retry.
     */
    std::uint64_t fastForward(std::uint64_t count);

    /** Operations consumed by fastForward() so far. */
    std::uint64_t fastForwardedOps() const { return _ffOps; }

    // MemClient
    void recvResponse(PacketPtr pkt) override;
    void recvRetry() override;

    /** Register the CPU's probe points ("cpu.issued"/"cpu.retired"). */
    void regProbes(probe::ProbeManager &pm);

  private:
    probe::CpuProbes _probes;

    void scheduleIssue(Tick when);
    void issue();
    PacketPtr makePacket(const compiler::TraceOp &op);

    trace::TraceSource &_src;
    MemDevice &_l1;
    CpuParams _params;

    compiler::TraceOp _pendingOp;
    PacketPtr _blockedPkt; ///< Rejected packet awaiting retry.
    bool _havePending = false;
    bool _traceDone = false;
    bool _waitingRetry = false;
    bool _issueScheduled = false;
    unsigned _outstanding = 0;
    Tick _finishTick = 0;
    std::uint64_t _nextValue = 1;
    /** Timed issues left in the current measured window (sampling);
     *  the ~0 default behaves as unlimited. */
    std::uint64_t _issueBudget = ~std::uint64_t{0};
    std::uint64_t _ffOps = 0;
    /** Budget level at which _budgetHook fires (~0 = never: a live
     *  budget can never climb back to its pre-decrement start). */
    std::uint64_t _hookAt = ~std::uint64_t{0};
    std::function<void()> _budgetHook;

    /** Reference model + per-packet expected read values. */
    BackingStore _reference;
    // MDA_LINT_ALLOW(DET-2): keyed emplace/find/erase by packet id
    // only, never iterated — hot checker-mode lookup per response.
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>
        _expected;

    stats::Scalar _ops, _vectorOps, _readOps, _writeOps;
    stats::Scalar _colOps;
    stats::Scalar _stallWindowFull, _stallRetry;
    stats::Scalar _computeCycles;
    stats::Scalar _checkFailures;
    stats::Distribution _loadLatency{0, 1000, 20};
};

} // namespace mda

#endif // MDA_HARNESS_TRACE_CPU_HH
