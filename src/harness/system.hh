/**
 * @file
 * System: assembles CPU + cache hierarchy + MDA memory for one run.
 */

#ifndef MDA_HARNESS_SYSTEM_HH
#define MDA_HARNESS_SYSTEM_HH

#include <memory>
#include <vector>

#include "compiler/compile.hh"
#include "core/line_cache.hh"
#include "core/tile_cache.hh"
#include "mem/mda_memory.hh"
#include "sim/interval_stats.hh"
#include "sim/packet_pool.hh"
#include "sim/probe.hh"
#include "system_config.hh"
#include "telemetry.hh"
#include "trace_cpu.hh"

namespace mda
{

/** Results distilled from one simulation. */
struct RunResult
{
    std::uint64_t cycles = 0;
    std::uint64_t ops = 0;

    double l1HitRate = 0.0;

    /** Requests arriving at the LLC (reads + writebacks). */
    std::uint64_t llcAccesses = 0;

    /** Bytes moved between the LLC and main memory. */
    std::uint64_t memBytes = 0;

    std::uint64_t checkFailures = 0;
};

/** One simulated machine executing one operation stream. */
class System
{
  public:
    /** Convenience: live generation from @p kernel (must outlive the
     *  System). */
    System(const SystemConfig &config,
           const compiler::CompiledKernel &kernel);

    /** Drive the CPU from an arbitrary operation stream: a direct
     *  workload emitter, a capturing tee, or a trace-file replay. */
    System(const SystemConfig &config,
           std::unique_ptr<trace::TraceSource> source);

    /** Run to completion and distill the results. With
     *  SystemConfig::sampling() set, dispatches to the SMARTS-style
     *  sampled loop (runSampled) instead of the exact event loop. */
    RunResult run();

    /** All statistics (benches pull extra series/values from here). */
    stats::StatGroup &statGroup() { return _stats; }
    EventQueue &eventQueue() { return _eq; }
    TraceCpu &cpu() { return *_cpu; }
    MdaMemory &memory() { return *_memory; }
    PacketPool &packetPool() { return _pool; }

    /** Packet-lifecycle probe points, by name ("l1.accepted", ...). */
    probe::ProbeManager &probeManager() { return _probes; }

    /** Interval-stats JSONL captured during run(); empty string when
     *  SystemConfig::statsInterval is 0. */
    std::string intervalJson() const
    {
        return _interval ? _interval->json() : std::string();
    }

    /** LineCache levels, CPU side first (empty slots for TileCache). */
    const std::vector<CacheBase *> &cacheLevels() const
    {
        return _levels;
    }

    /** Fig. 15 occupancy series name for level @p idx ("l1", ...). */
    static std::string levelName(std::size_t idx);

  private:
    void buildCaches(const SystemConfig &config);
    void sampleOccupancy();

    /** SMARTS loop: alternate measured windows with functional
     *  fast-forward, then scale counters to whole-run estimates. */
    RunResult runSampled();

    /** Shared tail of run()/runSampled(): distill RunResult. */
    RunResult distill() const;

    SystemConfig _config;
    EventQueue _eq;
    stats::StatGroup _stats;

    /** Declared before every packet-holding component so those are
     *  destroyed (and release their packets) while the pool's slabs
     *  are still alive. */
    PacketPool _pool;

    std::unique_ptr<trace::TraceSource> _source;
    std::vector<std::unique_ptr<CacheBase>> _caches;
    std::vector<CacheBase *> _levels;
    std::unique_ptr<MdaMemory> _memory;
    std::unique_ptr<TraceCpu> _cpu;

    /** Declared after the components so listeners detach before the
     *  probe points they attach to are destroyed. */
    probe::ProbeManager _probes;
    std::unique_ptr<telemetry::LatencyAccountant> _telemetry;
    std::unique_ptr<stats::IntervalStats> _interval;

    std::vector<stats::TimeSeries> _occupancy;
    std::string _llcName;
};

} // namespace mda

#endif // MDA_HARNESS_SYSTEM_HH
