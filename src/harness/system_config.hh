/**
 * @file
 * Whole-system configuration: the paper's design points (Table I and
 * Section IV-C) plus scaling support for fast bench runs.
 */

#ifndef MDA_HARNESS_SYSTEM_CONFIG_HH
#define MDA_HARNESS_SYSTEM_CONFIG_HH

#include <optional>
#include <string>

#include "cache/cache_config.hh"
#include "compiler/compile.hh"
#include "mem/timing_params.hh"

namespace mda
{

/** The cache-hierarchy design points evaluated in the paper. */
enum class DesignPoint : std::uint8_t
{
    D0_1P1L,         ///< Baseline: 1P1L everywhere + prefetching.
    D1_1P2L,         ///< 1P2L (Different-Set) at every level.
    D1_1P2L_SameSet, ///< 1P2L with Same-Set mapping at every level.
    D2_2P2L,         ///< 1P2L L1/L2 with a sparse 2P2L LLC.
    D2_2P2L_Dense,   ///< Same, with the dense block-fill policy.
    D3_2P2L_L1,      ///< 2P2L L1 (explicitly deferred by the paper).
};

/** Display name matching the paper's figures. */
constexpr const char *
designName(DesignPoint d)
{
    switch (d) {
      case DesignPoint::D0_1P1L: return "1P1L";
      case DesignPoint::D1_1P2L: return "1P2L";
      case DesignPoint::D1_1P2L_SameSet: return "1P2L_SameSet";
      case DesignPoint::D2_2P2L: return "2P2L";
      case DesignPoint::D2_2P2L_Dense: return "2P2L_Dense";
      case DesignPoint::D3_2P2L_L1: return "2P2L_L1";
    }
    return "?";
}

/** Where the CPU's operation stream comes from (see src/trace/). */
enum class TraceMode : std::uint8_t
{
    Off,     ///< Live generation from the compiled kernel.
    Capture, ///< Live generation, teed into a trace file.
    Replay,  ///< Replayed from a previously captured trace file.
};

/** Whole-system parameters. */
struct SystemConfig
{
    DesignPoint design = DesignPoint::D1_1P2L;

    /** Cache sizes (Table I: 32K L1 / 256K L2 / 1M..4M L3). */
    std::uint64_t l1Size = 32 * 1024;
    std::uint64_t l2Size = 256 * 1024;
    std::uint64_t l3Size = 1024 * 1024;

    /** False = two-level hierarchy where the L2 is the LLC (the
     *  cache-resident study of Fig. 13 uses a 2 MB L2 LLC). */
    bool threeLevel = true;

    MemTimingParams memTiming = MemTimingParams::sttDefault();
    MemTopologyParams memTopo{};

    /** Extra 2P2L write latency (Fig. 16's +20-cycle study). */
    Cycles tileWritePenalty = 0;

    /** CPU MLP window. */
    unsigned maxOutstanding = 16;

    /** Baseline prefetch degree (L1 and L2; 0 disables). */
    unsigned prefetchDegree = 8;

    /** Enable the gather-hit policy (assemble an oriented line from
     *  crossing lines) at the non-L1 1P2L levels. */
    bool gatherHits = false;

    /** Verify all data movement against a reference model. */
    bool checkData = false;

    /** Sample column occupancy every N cycles (0 = off, Fig. 15). */
    Tick occupancySamplePeriod = 0;

    /** Host-side sim-speed heartbeat: inform() ticks/sec roughly
     *  every this many wall-clock seconds (0 = off). Quick runs
     *  finish before the first beat and stay silent. */
    unsigned heartbeatSeconds = 10;

    /** Layout override for the layout-mismatch ablation. */
    std::optional<compiler::LayoutKind> layoutOverride;

    /** Disable 2-D MSHR scalar-miss coalescing (ablation): misses
     *  fetch their line but scalars to the same in-flight line are
     *  held rather than coalesced. (Modeled as MSHR target cap 1.) */
    bool disableMshrCoalescing = false;

    /** Build the LatencyAccountant probe listener and register its
     *  per-level/orientation/stage breakdown stats ("telemetry.*").
     *  Off by default: the default --stats-json stays byte-identical
     *  and the lifecycle probes cost one predicted-false branch. */
    bool telemetry = false;

    /** Emit an interval-stats JSONL record every N ticks (0 = off);
     *  retrieved via System::intervalJson() / --stats-jsonl. */
    Tick statsInterval = 0;

    /** Recycle packet storage through the per-System PacketPool
     *  instead of heap-allocating each transaction. Pure host-side
     *  optimization: simulated behavior and stats are identical
     *  either way (the determinism tests pin this). */
    bool packetPooling = true;

    /**
     * SMARTS-style sampled simulation: of every samplePeriod
     * operations, 2 x sampleWindow are simulated fully timed — a
     * detailed-warming stretch that refills the transient queue
     * state after the functional gap, then the measured window —
     * and the rest are fast-forwarded functionally: cache state
     * stays warm, no events run. Counter stats are scaled to
     * whole-run estimates from the per-window rates, with 95%
     * confidence intervals recorded in the stats JSON's meta
     * "sampling" block. 0 disables (the default: full runs stay
     * byte-identical). Requires 2 * sampleWindow <= samplePeriod.
     *
     * Incompatible with checkData (fast-forward moves no data),
     * trace Capture (the captured stream would be incomplete), and
     * the tick-driven samplers (occupancySamplePeriod,
     * statsInterval): skipped intervals would skew their series.
     */
    std::uint64_t samplePeriod = 0;

    /** Fully-timed operations per measured window (sampling). */
    std::uint64_t sampleWindow = 0;

    bool sampling() const { return samplePeriod > 0; }

    /** Capture or replay the operation stream instead of (re)walking
     *  the loop nest every run. Off by default; stats and results are
     *  byte-identical in all three modes. */
    TraceMode traceMode = TraceMode::Off;

    /** Directory holding the captured traces; each run derives its
     *  file name from the trace key (trace::traceFileName). */
    std::string traceDir;

    /** Compiler options implied by the design point. */
    compiler::CompileOptions
    compileOptions() const
    {
        compiler::CompileOptions opts;
        opts.mdaEnabled = (design != DesignPoint::D0_1P1L);
        opts.vectorize = true;
        opts.layoutOverride = layoutOverride;
        return opts;
    }

    /**
     * Scale every cache size by the square of (paper n / run n) so a
     * scaled run preserves the paper's working-set : capacity ratios
     * (e.g. n = 128 divides capacities by 16).
     */
    SystemConfig
    scaledForInput(std::int64_t n, std::int64_t paper_n = 512) const
    {
        SystemConfig out = *this;
        if (n >= paper_n)
            return out;
        std::uint64_t factor = static_cast<std::uint64_t>(
            (paper_n / n) * (paper_n / n));
        auto scale = [factor](std::uint64_t bytes) {
            std::uint64_t scaled = bytes / factor;
            // Round to a 4 KiB multiple so every associativity and
            // the 512 B tile granularity divide evenly.
            scaled = alignUp(std::max<std::uint64_t>(scaled, 4096),
                             4096);
            return scaled;
        };
        out.l1Size = scale(l1Size);
        out.l2Size = scale(l2Size);
        out.l3Size = scale(l3Size);
        return out;
    }
};

} // namespace mda

#endif // MDA_HARNESS_SYSTEM_CONFIG_HH
