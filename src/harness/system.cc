#include "system.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

namespace mda
{

std::string
System::levelName(std::size_t idx)
{
    return "l" + std::to_string(idx + 1);
}

System::System(const SystemConfig &config,
               const compiler::CompiledKernel &kernel)
    : System(config, std::make_unique<trace::GeneratorSource>(kernel))
{}

System::System(const SystemConfig &config,
               std::unique_ptr<trace::TraceSource> source)
    : _config(config), _source(std::move(source))
{
    if (config.sampling()) {
        if (config.sampleWindow == 0 ||
            config.sampleWindow * 2 > config.samplePeriod) {
            fatal("sampling window (%llu) must be positive with "
                  "twice the window fitting in the period (%llu): "
                  "each measured window is preceded by an equally "
                  "long detailed-warming stretch",
                  (unsigned long long)config.sampleWindow,
                  (unsigned long long)config.samplePeriod);
        }
        if (config.checkData)
            fatal("sampling is incompatible with data checking: "
                  "fast-forward moves no data");
        if (config.traceMode == TraceMode::Capture)
            fatal("sampling is incompatible with trace capture: "
                  "the captured stream would be complete but the "
                  "timed run of it would not be reproducible");
        if (config.occupancySamplePeriod > 0 ||
            config.statsInterval > 0) {
            fatal("sampling is incompatible with tick-driven "
                  "samplers (occupancy/interval stats): "
                  "fast-forwarded intervals would skew the series");
        }
    }
    _memory = std::make_unique<MdaMemory>(
        "mem", _eq, _stats, config.memTiming, config.memTopo);
    buildCaches(config);

    // Wire the chain: levels[0] ... levels[n-1] -> memory.
    for (std::size_t n = 0; n < _levels.size(); ++n) {
        MemDevice *below =
            (n + 1 < _levels.size())
                ? static_cast<MemDevice *>(_levels[n + 1])
                : static_cast<MemDevice *>(_memory.get());
        _levels[n]->setDownstream(below);
        below->setUpstream(_levels[n]);
    }

    CpuParams cpu_params;
    cpu_params.maxOutstanding = config.maxOutstanding;
    cpu_params.checkData = config.checkData;
    _cpu = std::make_unique<TraceCpu>("cpu", _eq, _stats, *_source,
                                      *_levels.front(), cpu_params);
    _levels.front()->setUpstream(_cpu.get());

    if (config.packetPooling) {
        _cpu->setPacketPool(&_pool);
        for (auto &cache : _caches)
            cache->setPacketPool(&_pool);
        _memory->setPacketPool(&_pool);
    }

    // Every component exposes its packet-lifecycle probe points
    // unconditionally; with no listeners each fire site is a single
    // predicted-false branch.
    _cpu->regProbes(_probes);
    for (auto &cache : _caches)
        cache->regProbes(_probes);
    _memory->regProbes(_probes);

    if (config.telemetry) {
        std::vector<std::string> telem_levels;
        for (std::size_t n = 0; n < _levels.size(); ++n)
            telem_levels.push_back(levelName(n));
        telem_levels.push_back("mem");
        _telemetry = std::make_unique<telemetry::LatencyAccountant>(
            _probes, _stats, telem_levels);
    }

    if (config.statsInterval > 0) {
        _interval = std::make_unique<stats::IntervalStats>(
            _stats, _eq, config.statsInterval);
        for (std::size_t n = 0; n < _levels.size(); ++n) {
            if (auto *line = dynamic_cast<LineCache *>(_levels[n])) {
                _interval->addGauge(
                    levelName(n) + ".colOccupancy",
                    [line] { return line->colOccupancy(); });
            } else if (auto *tile =
                           dynamic_cast<TileCache *>(_levels[n])) {
                _interval->addGauge(
                    levelName(n) + ".presentWords", [tile] {
                        return static_cast<double>(
                            tile->presentWords());
                    });
            }
        }
    }

    // Self-description for archived stats (satellite: meta block).
    _stats.setMeta("design", designName(config.design));
    _stats.setMeta("levels", std::to_string(_levels.size()));
    _stats.setMeta("llc", _llcName);

    // Fig. 15 occupancy series, one per LineCache level.
    _occupancy.resize(_levels.size());
    for (std::size_t n = 0; n < _levels.size(); ++n) {
        _stats.regTimeSeries(levelName(n) + ".colOccupancy",
                             &_occupancy[n],
                             "column-line occupancy over time");
    }
}

void
System::buildCaches(const SystemConfig &config)
{
    unsigned levels = config.threeLevel ? 3 : 2;

    CacheConfig l1 = CacheConfig::l1D();
    l1.sizeBytes = config.l1Size;
    CacheConfig l2 = CacheConfig::l2(config.l2Size);
    CacheConfig l3 = CacheConfig::l3(config.l3Size);
    if (config.disableMshrCoalescing) {
        l1.targetsPerMshr = 1;
        l2.targetsPerMshr = 1;
        l3.targetsPerMshr = 1;
    }

    auto line_mapping = LineMapping::TwoDDiffSet;
    bool tile_llc = false;
    auto tile_fill = TileFillPolicy::Sparse;
    bool prefetch = false;
    switch (config.design) {
      case DesignPoint::D0_1P1L:
        line_mapping = LineMapping::OneD;
        prefetch = (config.prefetchDegree > 0);
        break;
      case DesignPoint::D1_1P2L:
        line_mapping = LineMapping::TwoDDiffSet;
        break;
      case DesignPoint::D1_1P2L_SameSet:
        line_mapping = LineMapping::TwoDSameSet;
        break;
      case DesignPoint::D2_2P2L:
        line_mapping = LineMapping::TwoDDiffSet;
        tile_llc = true;
        break;
      case DesignPoint::D2_2P2L_Dense:
        line_mapping = LineMapping::TwoDDiffSet;
        tile_llc = true;
        tile_fill = TileFillPolicy::Dense;
        break;
      case DesignPoint::D3_2P2L_L1:
        fatal("Design 3 (2P2L L1) is deferred to future work in the "
              "paper and not implemented; pick another design point");
    }

    std::vector<CacheConfig> cfgs;
    cfgs.push_back(l1);
    cfgs.push_back(l2);
    if (levels == 3)
        cfgs.push_back(l3);

    for (unsigned n = 0; n < levels; ++n) {
        CacheConfig cfg = cfgs[n];
        bool is_llc = (n + 1 == levels);
        if (prefetch && !is_llc) {
            cfg.prefetch = true;
            cfg.prefetchDegree = config.prefetchDegree;
        }
        if (config.gatherHits && n > 0)
            cfg.gatherHits = true;
        std::string name = levelName(n);
        if (is_llc && tile_llc) {
            auto tile = std::make_unique<TileCache>(name, _eq, _stats,
                                                    cfg, tile_fill);
            tile->setWritePenalty(config.tileWritePenalty);
            _levels.push_back(tile.get());
            _caches.push_back(std::move(tile));
        } else {
            auto cache = std::make_unique<LineCache>(
                name, _eq, _stats, cfg, line_mapping);
            _levels.push_back(cache.get());
            _caches.push_back(std::move(cache));
        }
        if (is_llc)
            _llcName = name;
    }
}

void
System::sampleOccupancy()
{
    for (std::size_t n = 0; n < _levels.size(); ++n) {
        auto *line = dynamic_cast<LineCache *>(_levels[n]);
        if (line)
            _occupancy[n].sample(_eq.curTick(), line->colOccupancy());
    }
    if (!_cpu->done()) {
        _eq.schedule(_eq.curTick() + _config.occupancySamplePeriod,
                     [this] { sampleOccupancy(); },
                     EventPriority::Stats);
    }
}

RunResult
System::run()
{
    if (_config.sampling())
        return runSampled();

    // MDA_LINT_ALLOW(DET-1): the ticks/sec heartbeat is the one
    // sanctioned wall-clock read — it paces progress reporting only
    // and can never influence simulated state or event order.
    using Clock = std::chrono::steady_clock;

    _cpu->start();
    if (_config.occupancySamplePeriod > 0)
        sampleOccupancy();
    if (_interval)
        _interval->start([this] { return !_cpu->done(); });

    if (_config.heartbeatSeconds == 0) {
        _eq.run();
    } else {
        // Run in bounded tick slices so the host can report progress:
        // a ticks/sec heartbeat roughly every heartbeatSeconds of
        // wall time. Slicing preserves event order exactly.
        constexpr Tick slice = 1u << 20;
        const auto period =
            std::chrono::seconds(_config.heartbeatSeconds);
        auto last_wall = Clock::now();
        Tick last_tick = _eq.curTick();
        while (!_eq.empty()) {
            // Always cover the next event so the loop advances even
            // across idle gaps longer than the slice.
            Tick target = std::max(_eq.nextTick(),
                                   _eq.curTick() + slice);
            _eq.run(target);
            auto now = Clock::now();
            if (now - last_wall >= period) {
                double secs =
                    std::chrono::duration<double>(now - last_wall)
                        .count();
                inform("heartbeat: tick %llu, %.2f Mticks/s",
                       (unsigned long long)_eq.curTick(),
                       static_cast<double>(_eq.curTick() - last_tick) /
                           secs / 1e6);
                last_wall = now;
                last_tick = _eq.curTick();
            }
        }
    }
    if (!_cpu->done())
        panic("simulation deadlocked at tick %llu",
              (unsigned long long)_eq.curTick());
    if (_interval)
        _interval->finalize();
    _stats.setMeta("finalTick",
                   std::to_string(_cpu->finishTick()));
    return distill();
}

RunResult
System::distill() const
{
    RunResult result;
    result.cycles = _cpu->finishTick();
    result.ops =
        static_cast<std::uint64_t>(_stats.scalar("cpu.ops"));
    double l1_acc = _stats.scalar("l1.demandAccesses");
    result.l1HitRate =
        l1_acc > 0 ? _stats.scalar("l1.demandHits") / l1_acc : 0.0;
    result.llcAccesses = static_cast<std::uint64_t>(
        _stats.scalar(_llcName + ".demandAccesses") +
        _stats.scalar(_llcName + ".writebacksIn"));
    result.memBytes = static_cast<std::uint64_t>(
        _stats.scalar("mem.bytesRead") +
        _stats.scalar("mem.bytesWritten"));
    result.checkFailures = _cpu->checkFailures();
    return result;
}

RunResult
System::runSampled()
{
    // SMARTS (Wunderlich et al.): each samplePeriod ops, run
    // 2 x sampleWindow fully timed — a detailed-warming stretch that
    // refills the transient micro-state (MLP window, MSHRs, row
    // buffers) after the functional gap, then the measured window
    // proper — and fast-forward the remainder functionally (state
    // effects only — replacement, dirty bits, duplicate coherence,
    // prefetcher training — so the measured windows also see warm
    // caches). The warm/measure boundary is a mid-run budget hook, so
    // the pipeline never drains between the two: without the warming,
    // queue-occupancy stats (issue stalls, row-buffer hits) are
    // systematically under-counted at every cold window start. Each
    // whole-run counter is estimated as (mean per-op rate across
    // windows) x (total ops), with a 95% confidence interval from the
    // window-to-window variance. Between windows the clock jumps by
    // the running cycles-per-op estimate so the final tick is itself
    // an estimate.
    const std::uint64_t window = _config.sampleWindow;
    const std::uint64_t warm = _config.sampleWindow;
    const std::uint64_t skip = _config.samplePeriod - window - warm;

    const std::vector<std::string> names = _stats.scalarNames();
    std::vector<std::vector<double>> rates(names.size());
    std::vector<double> before(names.size(), 0.0);
    std::vector<double> after(names.size(), 0.0);
    std::vector<double> ticksPerOp;

    std::uint64_t windows = 0;
    std::uint64_t measuredOps = 0;
    Tick measuredTicks = 0;

    const auto opsIdx = static_cast<std::size_t>(
        std::find(names.begin(), names.end(), "cpu.ops") -
        names.begin());
    mda_assert(opsIdx < names.size(), "cpu.ops not registered");

    while (true) {
        // ---- detailed warming + measured window (one timed run) ----
        // Both measurement boundaries are mid-run budget hooks: the
        // window opens when warming's last op has issued (pipeline
        // hot, never drained) and closes when its own last op issues
        // (before the drain). In-flight traffic thus crosses both
        // edges symmetrically — closing after the drain instead
        // over-counts fills by up to maxOutstanding per window.
        Tick t0 = 0, t1 = 0;
        bool measuring = false, closed = false;
        _cpu->setIssueBudget(warm + window);
        _cpu->setBudgetHook(window, [&] {
            for (std::size_t i = 0; i < names.size(); ++i)
                before[i] = _stats.scalar(names[i]);
            t0 = _eq.curTick();
            measuring = true;
            _cpu->setBudgetHook(0, [&] {
                for (std::size_t i = 0; i < names.size(); ++i)
                    after[i] = _stats.scalar(names[i]);
                t1 = _eq.curTick();
                closed = true;
            });
        });
        const double ops_at_entry = _stats.scalar("cpu.ops");
        _cpu->start();
        _eq.run();

        std::uint64_t issued = static_cast<std::uint64_t>(
            _stats.scalar("cpu.ops") - ops_at_entry);
        if (!_cpu->done() && issued != warm + window)
            panic("sampled simulation deadlocked at tick %llu",
                  (unsigned long long)_eq.curTick());
        // The trace can dry up during warming (nothing measured this
        // period) or mid-window — the partial window then closes at
        // the post-drain state, like the full run's own ending.
        if (measuring && !closed) {
            for (std::size_t i = 0; i < names.size(); ++i)
                after[i] = _stats.scalar(names[i]);
            t1 = _eq.curTick();
        }
        std::uint64_t wops =
            measuring ? static_cast<std::uint64_t>(after[opsIdx] -
                                                   before[opsIdx])
                      : 0;
        if (wops > 0) {
            for (std::size_t i = 0; i < names.size(); ++i) {
                rates[i].push_back((after[i] - before[i]) /
                                   static_cast<double>(wops));
            }
            ticksPerOp.push_back(static_cast<double>(t1 - t0) /
                                 static_cast<double>(wops));
            ++windows;
            measuredOps += wops;
            measuredTicks += t1 - t0;
        }
        if (_cpu->done())
            break;

        // ---- functional fast-forward ----
        std::uint64_t skipped = _cpu->fastForward(skip);
        if (skipped > 0 && measuredOps > 0) {
            // Advance the clock by the running cycles-per-op estimate
            // so finishTick / finalTick extrapolate the same way the
            // counters do.
            double cpo = static_cast<double>(measuredTicks) /
                         static_cast<double>(measuredOps);
            _eq.advanceTo(_eq.curTick() +
                          static_cast<Tick>(
                              cpo * static_cast<double>(skipped)));
        }
        if (_cpu->done())
            break;
    }
    _cpu->setBudgetHook(~std::uint64_t{0}, nullptr);

    const std::uint64_t totalOps =
        static_cast<std::uint64_t>(_stats.scalar("cpu.ops")) +
        _cpu->fastForwardedOps();

    // Scale counters to whole-run estimates; gauges keep their last
    // observed value. The CI meta block records the sampling design
    // and the per-stat uncertainty for the analyzers' error bars.
    std::ostringstream meta;
    meta << "{\"periodOps\":" << _config.samplePeriod
         << ",\"windowOps\":" << window << ",\"warmupOps\":" << warm
         << ",\"windows\":" << windows
         << ",\"measuredOps\":" << measuredOps
         << ",\"totalOps\":" << totalOps << ",\"stats\":{";
    bool first_stat = true;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (_stats.isGauge(names[i]) || rates[i].empty())
            continue;
        double mean = 0.0;
        for (double r : rates[i])
            mean += r;
        mean /= static_cast<double>(rates[i].size());
        double var = 0.0;
        for (double r : rates[i])
            var += (r - mean) * (r - mean);
        std::size_t n = rates[i].size();
        double stderr_rate =
            n > 1 ? std::sqrt(var / static_cast<double>(n - 1) /
                              static_cast<double>(n))
                  : 0.0;
        double estimate = mean * static_cast<double>(totalOps);
        double ci95 =
            1.96 * stderr_rate * static_cast<double>(totalOps);
        _stats.setScalar(names[i], estimate);
        if (!first_stat)
            meta << ",";
        first_stat = false;
        meta << "\"" << names[i] << "\":{\"estimate\":";
        stats::writeJsonNumber(meta, estimate);
        meta << ",\"ci95\":";
        stats::writeJsonNumber(meta, ci95);
        meta << "}";
    }
    meta << "}}";
    _stats.setMeta("sampling", meta.str());
    // The clock advanced through the fast-forward phases by the
    // cycles-per-op estimate, so the current tick *is* the estimated
    // run length (finishTick would predate the final advance when the
    // trace dries up mid-fast-forward).
    _stats.setMeta("finalTick", std::to_string(_eq.curTick()));
    RunResult result = distill();
    result.cycles = _eq.curTick();
    return result;
}

} // namespace mda
