#include "system.hh"

#include <chrono>

namespace mda
{

std::string
System::levelName(std::size_t idx)
{
    return "l" + std::to_string(idx + 1);
}

System::System(const SystemConfig &config,
               const compiler::CompiledKernel &kernel)
    : System(config, std::make_unique<trace::GeneratorSource>(kernel))
{}

System::System(const SystemConfig &config,
               std::unique_ptr<trace::TraceSource> source)
    : _config(config), _source(std::move(source))
{
    _memory = std::make_unique<MdaMemory>(
        "mem", _eq, _stats, config.memTiming, config.memTopo);
    buildCaches(config);

    // Wire the chain: levels[0] ... levels[n-1] -> memory.
    for (std::size_t n = 0; n < _levels.size(); ++n) {
        MemDevice *below =
            (n + 1 < _levels.size())
                ? static_cast<MemDevice *>(_levels[n + 1])
                : static_cast<MemDevice *>(_memory.get());
        _levels[n]->setDownstream(below);
        below->setUpstream(_levels[n]);
    }

    CpuParams cpu_params;
    cpu_params.maxOutstanding = config.maxOutstanding;
    cpu_params.checkData = config.checkData;
    _cpu = std::make_unique<TraceCpu>("cpu", _eq, _stats, *_source,
                                      *_levels.front(), cpu_params);
    _levels.front()->setUpstream(_cpu.get());

    if (config.packetPooling) {
        _cpu->setPacketPool(&_pool);
        for (auto &cache : _caches)
            cache->setPacketPool(&_pool);
        _memory->setPacketPool(&_pool);
    }

    // Every component exposes its packet-lifecycle probe points
    // unconditionally; with no listeners each fire site is a single
    // predicted-false branch.
    _cpu->regProbes(_probes);
    for (auto &cache : _caches)
        cache->regProbes(_probes);
    _memory->regProbes(_probes);

    if (config.telemetry) {
        std::vector<std::string> telem_levels;
        for (std::size_t n = 0; n < _levels.size(); ++n)
            telem_levels.push_back(levelName(n));
        telem_levels.push_back("mem");
        _telemetry = std::make_unique<telemetry::LatencyAccountant>(
            _probes, _stats, telem_levels);
    }

    if (config.statsInterval > 0) {
        _interval = std::make_unique<stats::IntervalStats>(
            _stats, _eq, config.statsInterval);
        for (std::size_t n = 0; n < _levels.size(); ++n) {
            if (auto *line = dynamic_cast<LineCache *>(_levels[n])) {
                _interval->addGauge(
                    levelName(n) + ".colOccupancy",
                    [line] { return line->colOccupancy(); });
            } else if (auto *tile =
                           dynamic_cast<TileCache *>(_levels[n])) {
                _interval->addGauge(
                    levelName(n) + ".presentWords", [tile] {
                        return static_cast<double>(
                            tile->presentWords());
                    });
            }
        }
    }

    // Self-description for archived stats (satellite: meta block).
    _stats.setMeta("design", designName(config.design));
    _stats.setMeta("levels", std::to_string(_levels.size()));
    _stats.setMeta("llc", _llcName);

    // Fig. 15 occupancy series, one per LineCache level.
    _occupancy.resize(_levels.size());
    for (std::size_t n = 0; n < _levels.size(); ++n) {
        _stats.regTimeSeries(levelName(n) + ".colOccupancy",
                             &_occupancy[n],
                             "column-line occupancy over time");
    }
}

void
System::buildCaches(const SystemConfig &config)
{
    unsigned levels = config.threeLevel ? 3 : 2;

    CacheConfig l1 = CacheConfig::l1D();
    l1.sizeBytes = config.l1Size;
    CacheConfig l2 = CacheConfig::l2(config.l2Size);
    CacheConfig l3 = CacheConfig::l3(config.l3Size);
    if (config.disableMshrCoalescing) {
        l1.targetsPerMshr = 1;
        l2.targetsPerMshr = 1;
        l3.targetsPerMshr = 1;
    }

    auto line_mapping = LineMapping::TwoDDiffSet;
    bool tile_llc = false;
    auto tile_fill = TileFillPolicy::Sparse;
    bool prefetch = false;
    switch (config.design) {
      case DesignPoint::D0_1P1L:
        line_mapping = LineMapping::OneD;
        prefetch = (config.prefetchDegree > 0);
        break;
      case DesignPoint::D1_1P2L:
        line_mapping = LineMapping::TwoDDiffSet;
        break;
      case DesignPoint::D1_1P2L_SameSet:
        line_mapping = LineMapping::TwoDSameSet;
        break;
      case DesignPoint::D2_2P2L:
        line_mapping = LineMapping::TwoDDiffSet;
        tile_llc = true;
        break;
      case DesignPoint::D2_2P2L_Dense:
        line_mapping = LineMapping::TwoDDiffSet;
        tile_llc = true;
        tile_fill = TileFillPolicy::Dense;
        break;
      case DesignPoint::D3_2P2L_L1:
        fatal("Design 3 (2P2L L1) is deferred to future work in the "
              "paper and not implemented; pick another design point");
    }

    std::vector<CacheConfig> cfgs;
    cfgs.push_back(l1);
    cfgs.push_back(l2);
    if (levels == 3)
        cfgs.push_back(l3);

    for (unsigned n = 0; n < levels; ++n) {
        CacheConfig cfg = cfgs[n];
        bool is_llc = (n + 1 == levels);
        if (prefetch && !is_llc) {
            cfg.prefetch = true;
            cfg.prefetchDegree = config.prefetchDegree;
        }
        if (config.gatherHits && n > 0)
            cfg.gatherHits = true;
        std::string name = levelName(n);
        if (is_llc && tile_llc) {
            auto tile = std::make_unique<TileCache>(name, _eq, _stats,
                                                    cfg, tile_fill);
            tile->setWritePenalty(config.tileWritePenalty);
            _levels.push_back(tile.get());
            _caches.push_back(std::move(tile));
        } else {
            auto cache = std::make_unique<LineCache>(
                name, _eq, _stats, cfg, line_mapping);
            _levels.push_back(cache.get());
            _caches.push_back(std::move(cache));
        }
        if (is_llc)
            _llcName = name;
    }
}

void
System::sampleOccupancy()
{
    for (std::size_t n = 0; n < _levels.size(); ++n) {
        auto *line = dynamic_cast<LineCache *>(_levels[n]);
        if (line)
            _occupancy[n].sample(_eq.curTick(), line->colOccupancy());
    }
    if (!_cpu->done()) {
        _eq.schedule(_eq.curTick() + _config.occupancySamplePeriod,
                     [this] { sampleOccupancy(); },
                     EventPriority::Stats);
    }
}

RunResult
System::run()
{
    // MDA_LINT_ALLOW(DET-1): the ticks/sec heartbeat is the one
    // sanctioned wall-clock read — it paces progress reporting only
    // and can never influence simulated state or event order.
    using Clock = std::chrono::steady_clock;

    _cpu->start();
    if (_config.occupancySamplePeriod > 0)
        sampleOccupancy();
    if (_interval)
        _interval->start([this] { return !_cpu->done(); });

    if (_config.heartbeatSeconds == 0) {
        _eq.run();
    } else {
        // Run in bounded tick slices so the host can report progress:
        // a ticks/sec heartbeat roughly every heartbeatSeconds of
        // wall time. Slicing preserves event order exactly.
        constexpr Tick slice = 1u << 20;
        const auto period =
            std::chrono::seconds(_config.heartbeatSeconds);
        auto last_wall = Clock::now();
        Tick last_tick = _eq.curTick();
        while (!_eq.empty()) {
            // Always cover the next event so the loop advances even
            // across idle gaps longer than the slice.
            Tick target = std::max(_eq.nextTick(),
                                   _eq.curTick() + slice);
            _eq.run(target);
            auto now = Clock::now();
            if (now - last_wall >= period) {
                double secs =
                    std::chrono::duration<double>(now - last_wall)
                        .count();
                inform("heartbeat: tick %llu, %.2f Mticks/s",
                       (unsigned long long)_eq.curTick(),
                       static_cast<double>(_eq.curTick() - last_tick) /
                           secs / 1e6);
                last_wall = now;
                last_tick = _eq.curTick();
            }
        }
    }
    if (!_cpu->done())
        panic("simulation deadlocked at tick %llu",
              (unsigned long long)_eq.curTick());
    if (_interval)
        _interval->finalize();
    _stats.setMeta("finalTick",
                   std::to_string(_cpu->finishTick()));

    RunResult result;
    result.cycles = _cpu->finishTick();
    result.ops =
        static_cast<std::uint64_t>(_stats.scalar("cpu.ops"));
    double l1_acc = _stats.scalar("l1.demandAccesses");
    result.l1HitRate =
        l1_acc > 0 ? _stats.scalar("l1.demandHits") / l1_acc : 0.0;
    result.llcAccesses = static_cast<std::uint64_t>(
        _stats.scalar(_llcName + ".demandAccesses") +
        _stats.scalar(_llcName + ".writebacksIn"));
    result.memBytes = static_cast<std::uint64_t>(
        _stats.scalar("mem.bytesRead") +
        _stats.scalar("mem.bytesWritten"));
    result.checkFailures = _cpu->checkFailures();
    return result;
}

} // namespace mda
