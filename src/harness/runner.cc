#include "runner.hh"

#include "trace/trace_source.hh"
#include "workloads/emitters.hh"

namespace mda
{

namespace
{

/** Compile the workload's loop-nest IR — unless this run replays a
 *  captured trace (no IR needed at all) or the workload is a direct
 *  trace emitter (it has no IR to compile). */
std::optional<compiler::CompiledKernel>
maybeCompile(const RunSpec &spec)
{
    if (spec.system.traceMode == TraceMode::Replay)
        return std::nullopt;
    if (workloads::isEmitterWorkload(spec.workload))
        return std::nullopt;
    return compiler::compileKernel(
        workloads::makeWorkload(spec.workload,
                                PreparedRun::workloadParams(spec)),
        spec.system.compileOptions());
}

std::unique_ptr<System>
buildSystem(const RunSpec &spec,
            const std::optional<compiler::CompiledKernel> &kernel)
{
    const SystemConfig &cfg = spec.system;

    std::string trace_path;
    if (cfg.traceMode != TraceMode::Off) {
        if (cfg.traceDir.empty())
            fatal("trace capture/replay requires a trace directory");
        trace_path = cfg.traceDir + "/" +
                     trace::traceFileName(spec.workload, spec.n,
                                          spec.seed,
                                          cfg.compileOptions());
    }

    std::unique_ptr<trace::TraceSource> source;
    if (cfg.traceMode == TraceMode::Replay) {
        source = std::make_unique<trace::ReplaySource>(trace_path);
    } else {
        if (kernel) {
            source =
                std::make_unique<trace::GeneratorSource>(*kernel);
        } else {
            source = workloads::makeEmitterSource(
                spec.workload, PreparedRun::workloadParams(spec),
                cfg.compileOptions());
        }
        if (cfg.traceMode == TraceMode::Capture) {
            source = std::make_unique<trace::CaptureSource>(
                std::move(source), trace_path);
        }
    }

    SystemConfig sys =
        spec.autoScaleCaches ? cfg.scaledForInput(spec.n) : cfg;
    return std::make_unique<System>(sys, std::move(source));
}

} // namespace

PreparedRun::PreparedRun(const RunSpec &spec)
    : kernel(maybeCompile(spec)),
      _system(buildSystem(spec, kernel)),
      system(*_system)
{}

} // namespace mda
