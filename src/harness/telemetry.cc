#include "telemetry.hh"

#include "sim/packet.hh"

namespace mda::telemetry
{

LatencyAccountant::LatencyAccountant(
    probe::ProbeManager &pm, stats::StatGroup &sg,
    const std::vector<std::string> &levels)
{
    using probe::PacketEvent;

    for (unsigned n = 0; n < levels.size(); ++n) {
        const std::string &level = levels[n];
        auto ls = std::make_unique<LevelStats>();
        ls->name = level;
        for (unsigned o = 0; o < 2; ++o) {
            const char *orient = (o == 0) ? "row" : "col";
            for (unsigned s = 0; s < numStages; ++s) {
                auto stage = static_cast<Stage>(s);
                ls->dist[o][s] = std::make_unique<stats::Distribution>(
                    0.0, 2000.0, 20);
                sg.regDistribution(
                    "telemetry." + level + "." + orient + "." +
                        stageName(stage),
                    ls->dist[o][s].get(),
                    std::string(stageName(stage)) + " stage latency, " +
                        orient + " requests served at " + level);
            }
        }
        sg.regScalar("telemetry." + level + ".requests",
                     &ls->requests,
                     "requests served (responded) at " + level);
        _levels.push_back(std::move(ls));

        auto *accepted =
            pm.findTyped<PacketEvent>(level + ".accepted");
        mda_assert(accepted, "no '%s.accepted' probe registered",
                   level.c_str());
        _listeners.emplace_back(
            *accepted,
            [this, n](const PacketEvent &ev) { onAccepted(n, ev); });

        // The memory controller's "issued" marks the same boundary a
        // cache's "mshrQueued" does: the request stops waiting and
        // its service begins.
        auto *queued = pm.findTyped<PacketEvent>(level + ".mshrQueued");
        if (!queued)
            queued = pm.findTyped<PacketEvent>(level + ".issued");
        mda_assert(queued,
                   "no '%s.mshrQueued'/'%s.issued' probe registered",
                   level.c_str(), level.c_str());
        _listeners.emplace_back(
            *queued,
            [this](const PacketEvent &ev) { onMshrQueued(ev); });

        auto *responded =
            pm.findTyped<PacketEvent>(level + ".responded");
        mda_assert(responded, "no '%s.responded' probe registered",
                   level.c_str());
        _listeners.emplace_back(
            *responded,
            [this](const PacketEvent &ev) { onResponded(ev); });
    }
}

void
LatencyAccountant::onAccepted(unsigned level,
                              const probe::PacketEvent &ev)
{
    // Writebacks carry no response: their cost shows up as queue/bus
    // occupancy on the requests around them, not as a lifetime here.
    if (ev.pkt->cmd == MemCmd::Writeback)
        return;
    Open open;
    open.level = level;
    open.issue = ev.pkt->issueTick;
    open.accept = ev.when;
    _open[ev.pkt->id] = open;
}

void
LatencyAccountant::onMshrQueued(const probe::PacketEvent &ev)
{
    auto it = _open.find(ev.pkt->id);
    if (it == _open.end())
        return;
    it->second.mshrAt = ev.when;
    it->second.hasMshr = true;
}

void
LatencyAccountant::onResponded(const probe::PacketEvent &ev)
{
    auto it = _open.find(ev.pkt->id);
    if (it == _open.end())
        return;
    const Open &open = it->second;
    LevelStats &ls = *_levels[open.level];
    unsigned o = (ev.pkt->orient == Orientation::Col) ? 1 : 0;

    // The four stages tile [issue, delivery] exactly (see header).
    Tick service_start = open.hasMshr ? open.mshrAt : ev.when;
    double queue = static_cast<double>(open.accept - open.issue);
    double lookup = static_cast<double>(service_start - open.accept);
    double mshr =
        open.hasMshr ? static_cast<double>(ev.when - open.mshrAt) : 0.0;
    double deliver = static_cast<double>(ev.delay);

    ls.dist[o][static_cast<unsigned>(Stage::Queue)]->sample(queue);
    ls.dist[o][static_cast<unsigned>(Stage::Lookup)]->sample(lookup);
    ls.dist[o][static_cast<unsigned>(Stage::Mshr)]->sample(mshr);
    ls.dist[o][static_cast<unsigned>(Stage::Deliver)]->sample(deliver);
    ++ls.requests;
    _open.erase(it);
}

} // namespace mda::telemetry
