/**
 * @file
 * One-call experiment running: workload name + input size + system
 * config -> compiled kernel (or trace source), simulated system,
 * distilled results.
 */

#ifndef MDA_HARNESS_RUNNER_HH
#define MDA_HARNESS_RUNNER_HH

#include <memory>
#include <optional>
#include <string>

#include "system.hh"
#include "workloads/kernels.hh"

namespace mda
{

/** Everything needed for one simulation run. */
struct RunSpec
{
    std::string workload = "sgemm";

    /** Input dimension (paper: 256 or 512; benches default smaller). */
    std::int64_t n = 128;

    std::uint64_t seed = 0xc0ffee;

    SystemConfig system;

    /** Scale cache capacities with n to preserve the paper's
     *  working-set : capacity ratios (see SystemConfig). */
    bool autoScaleCaches = true;
};

/**
 * An operation stream and the system built around it.
 *
 * The stream is picked by SystemConfig::traceMode and the workload
 * kind: IR workloads compile to a kernel and generate live (optionally
 * teed into a trace file), direct-emitter workloads synthesize their
 * stream without the compiler, and replay skips both — kernel
 * compilation and loop-nest walking — by reading the captured file.
 */
class PreparedRun
{
  public:
    explicit PreparedRun(const RunSpec &spec);

    static workloads::WorkloadParams
    workloadParams(const RunSpec &spec)
    {
        workloads::WorkloadParams params;
        params.n = spec.n;
        params.seed = spec.seed;
        return params;
    }

    /** Engaged for live IR workloads; empty on replay and for direct
     *  emitters. */
    std::optional<compiler::CompiledKernel> kernel;

  private:
    std::unique_ptr<System> _system;

  public:
    System &system;
};

/** Compile, build, run, distill. */
inline RunResult
runOne(const RunSpec &spec)
{
    PreparedRun run(spec);
    return run.system.run();
}

} // namespace mda

#endif // MDA_HARNESS_RUNNER_HH
