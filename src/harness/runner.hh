/**
 * @file
 * One-call experiment running: workload name + input size + system
 * config -> compiled kernel, simulated system, distilled results.
 */

#ifndef MDA_HARNESS_RUNNER_HH
#define MDA_HARNESS_RUNNER_HH

#include <memory>
#include <string>

#include "system.hh"
#include "workloads/kernels.hh"

namespace mda
{

/** Everything needed for one simulation run. */
struct RunSpec
{
    std::string workload = "sgemm";

    /** Input dimension (paper: 256 or 512; benches default smaller). */
    std::int64_t n = 128;

    std::uint64_t seed = 0xc0ffee;

    SystemConfig system;

    /** Scale cache capacities with n to preserve the paper's
     *  working-set : capacity ratios (see SystemConfig). */
    bool autoScaleCaches = true;
};

/** A compiled kernel and the system built around it. */
class PreparedRun
{
  public:
    explicit PreparedRun(const RunSpec &spec)
        : kernel(compiler::compileKernel(
              workloads::makeWorkload(spec.workload,
                                      workloadParams(spec)),
              spec.system.compileOptions())),
          system(spec.autoScaleCaches
                     ? spec.system.scaledForInput(spec.n)
                     : spec.system,
                 kernel)
    {}

    static workloads::WorkloadParams
    workloadParams(const RunSpec &spec)
    {
        workloads::WorkloadParams params;
        params.n = spec.n;
        params.seed = spec.seed;
        return params;
    }

    compiler::CompiledKernel kernel;
    System system;
};

/** Compile, build, run, distill. */
inline RunResult
runOne(const RunSpec &spec)
{
    PreparedRun run(spec);
    return run.system.run();
}

} // namespace mda

#endif // MDA_HARNESS_RUNNER_HH
