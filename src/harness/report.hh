/**
 * @file
 * Plain-text table rendering for the bench binaries, which reprint
 * the paper's figures as rows/series.
 */

#ifndef MDA_HARNESS_REPORT_HH
#define MDA_HARNESS_REPORT_HH

#include <cmath>
#include <iomanip>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace mda::report
{

/** Format a double with fixed precision. */
inline std::string
fmt(double value, int precision = 3)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

/** Format as a percentage ("42.0%"). */
inline std::string
pct(double fraction, int precision = 1)
{
    return fmt(fraction * 100.0, precision) + "%";
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
}

/**
 * Geometric mean (for normalized ratios). Only positive values are
 * meaningful: zero/negative inputs (a degenerate ratio) would turn
 * the whole mean into NaN/-inf via std::log, so they are skipped
 * with a warning; all-non-positive input yields 0.
 */
inline double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    std::size_t used = 0;
    for (double v : values) {
        if (!(v > 0.0)) {
            warn("geomean: skipping non-positive value %g", v);
            continue;
        }
        log_sum += std::log(v);
        ++used;
    }
    if (used == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(used));
}

/** Column-aligned text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : _headers(std::move(headers))
    {}

    void
    addRow(std::vector<std::string> cells)
    {
        _rows.push_back(std::move(cells));
    }

    void
    print(std::ostream &os = std::cout) const
    {
        // Size by the widest row, not the header: a row may carry
        // more cells than there are headers.
        std::size_t columns = _headers.size();
        for (const auto &row : _rows)
            columns = std::max(columns, row.size());
        std::vector<std::size_t> widths(columns, 0);
        for (std::size_t c = 0; c < _headers.size(); ++c)
            widths[c] = _headers[c].size();
        for (const auto &row : _rows)
            for (std::size_t c = 0; c < row.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        auto print_row = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < cells.size(); ++c) {
                os << std::left << std::setw(
                       static_cast<int>(widths[c]) + 2)
                   << cells[c];
            }
            os << '\n';
        };
        print_row(_headers);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << '\n';
        for (const auto &row : _rows)
            print_row(row);
    }

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Section banner for bench output. */
inline void
banner(const std::string &title, std::ostream &os = std::cout)
{
    os << '\n' << "== " << title << " ==\n";
}

} // namespace mda::report

#endif // MDA_HARNESS_REPORT_HH
