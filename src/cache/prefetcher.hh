/**
 * @file
 * PC-indexed stride prefetcher for the baseline 1P1L hierarchy.
 *
 * The paper evaluates its MDA designs *without* prefetching against a
 * baseline *with* prefetching, to show that column transfers are
 * fundamentally different from (and stronger than) prefetch: a
 * perfect stride prefetcher still fetches a full row line per column
 * element, so it hides latency but cannot reduce traffic.
 */

#ifndef MDA_CACHE_PREFETCHER_HH
#define MDA_CACHE_PREFETCHER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/fastmod.hh"
#include "sim/logging.hh"
#include "sim/orientation.hh"
#include "sim/types.hh"

namespace mda
{

/** Classic per-PC stride table with 2-bit confidence. */
class StridePrefetcher
{
  public:
    /** Hard cap on the run-ahead degree; keeps the per-observation
     *  candidate list in fixed storage (observe() is on the demand
     *  hot path and must not allocate). */
    static constexpr unsigned maxDegree = 16;

    /** Candidate line base addresses from one observation. */
    class Candidates
    {
      public:
        const Addr *begin() const { return _addrs.data(); }
        const Addr *end() const { return _addrs.data() + _count; }
        unsigned size() const { return _count; }
        bool empty() const { return _count == 0; }

        Addr
        operator[](unsigned i) const
        {
            mda_assert(i < _count, "candidate index out of range");
            return _addrs[i];
        }

      private:
        friend class StridePrefetcher;
        void push(Addr a) { _addrs[_count++] = a; }

        std::array<Addr, maxDegree> _addrs;
        unsigned _count = 0;
    };

    explicit StridePrefetcher(unsigned degree = 4,
                              unsigned table_size = 256)
        : _degree(degree), _tableMod(table_size), _table(table_size)
    {
        mda_assert(degree <= maxDegree,
                   "prefetch degree %u above the supported maximum %u",
                   degree, maxDegree);
    }

    /**
     * Observe a demand access; return the row-line base addresses to
     * prefetch (empty while the stride is not yet confident). The
     * returned reference aliases a member buffer (observe() runs per
     * demand access; returning the array by value would copy 136 B
     * each time) and is invalidated by the next observe() call.
     */
    const Candidates &
    observe(std::uint32_t pc, Addr addr)
    {
        Candidates &out = _lastCandidates;
        out._count = 0;
        if (pc == 0)
            return out;
        TableEntry &entry = _table[_tableMod.mod(pc)];
        if (entry.pc != pc) {
            // Cold or conflicting slot: rebase.
            entry.pc = pc;
            entry.lastAddr = addr;
            entry.stride = 0;
            entry.confidence = 0;
            return out;
        }
        std::int64_t stride = static_cast<std::int64_t>(addr) -
                              static_cast<std::int64_t>(entry.lastAddr);
        entry.lastAddr = addr;
        if (stride == 0)
            return out;
        if (stride == entry.stride) {
            if (entry.confidence < 3)
                ++entry.confidence;
        } else {
            entry.stride = stride;
            entry.confidence = 1;
            return out;
        }
        if (entry.confidence < 2)
            return out;
        // Confident: run ahead by _degree *lines*. Sub-line strides
        // advance line by line (a unit-stride stream wants the next
        // lines, not the next few words); larger strides prefetch the
        // line of each predicted access.
        std::int64_t line_step = stride;
        if (stride > 0 && stride < static_cast<std::int64_t>(lineBytes))
            line_step = lineBytes;
        else if (stride < 0 &&
                 -stride < static_cast<std::int64_t>(lineBytes))
            line_step = -static_cast<std::int64_t>(lineBytes);
        Addr last_line = invalidAddr;
        for (unsigned d = 1; d <= _degree; ++d) {
            std::int64_t target =
                static_cast<std::int64_t>(alignDown(addr, lineBytes)) +
                line_step * static_cast<std::int64_t>(d);
            if (target < 0)
                break;
            Addr line = alignDown(static_cast<Addr>(target), lineBytes);
            if (line != last_line &&
                line != alignDown(addr, lineBytes)) {
                out.push(line);
                last_line = line;
            }
        }
        return out;
    }

    unsigned degree() const { return _degree; }

  private:
    struct TableEntry
    {
        std::uint32_t pc = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
    };

    unsigned _degree;
    /** Reciprocal for the table index (observe() runs per demand
     *  access; table sizes need not be powers of two). */
    FastMod _tableMod;
    /** Direct-mapped by pc % table_size (the slot's `pc` field
     *  detects conflicts and rebases, exactly as hardware would). */
    std::vector<TableEntry> _table;

    /** Backing storage for observe()'s result. */
    Candidates _lastCandidates;
};

} // namespace mda

#endif // MDA_CACHE_PREFETCHER_HH
