/**
 * @file
 * PC-indexed stride prefetcher for the baseline 1P1L hierarchy.
 *
 * The paper evaluates its MDA designs *without* prefetching against a
 * baseline *with* prefetching, to show that column transfers are
 * fundamentally different from (and stronger than) prefetch: a
 * perfect stride prefetcher still fetches a full row line per column
 * element, so it hides latency but cannot reduce traffic.
 */

#ifndef MDA_CACHE_PREFETCHER_HH
#define MDA_CACHE_PREFETCHER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/orientation.hh"
#include "sim/types.hh"

namespace mda
{

/** Classic per-PC stride table with 2-bit confidence. */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(unsigned degree = 4,
                              unsigned table_size = 256)
        : _degree(degree), _tableSize(table_size)
    {}

    /**
     * Observe a demand access; return the row-line base addresses to
     * prefetch (empty while the stride is not yet confident).
     */
    std::vector<Addr>
    observe(std::uint32_t pc, Addr addr)
    {
        std::vector<Addr> out;
        if (pc == 0)
            return out;
        TableEntry &entry = _table[pc % _tableSize];
        if (entry.pc != pc) {
            // Cold or conflicting slot: rebase.
            entry.pc = pc;
            entry.lastAddr = addr;
            entry.stride = 0;
            entry.confidence = 0;
            return out;
        }
        std::int64_t stride = static_cast<std::int64_t>(addr) -
                              static_cast<std::int64_t>(entry.lastAddr);
        entry.lastAddr = addr;
        if (stride == 0)
            return out;
        if (stride == entry.stride) {
            if (entry.confidence < 3)
                ++entry.confidence;
        } else {
            entry.stride = stride;
            entry.confidence = 1;
            return out;
        }
        if (entry.confidence < 2)
            return out;
        // Confident: run ahead by _degree *lines*. Sub-line strides
        // advance line by line (a unit-stride stream wants the next
        // lines, not the next few words); larger strides prefetch the
        // line of each predicted access.
        std::int64_t line_step = stride;
        if (stride > 0 && stride < static_cast<std::int64_t>(lineBytes))
            line_step = lineBytes;
        else if (stride < 0 &&
                 -stride < static_cast<std::int64_t>(lineBytes))
            line_step = -static_cast<std::int64_t>(lineBytes);
        Addr last_line = invalidAddr;
        for (unsigned d = 1; d <= _degree; ++d) {
            std::int64_t target =
                static_cast<std::int64_t>(alignDown(addr, lineBytes)) +
                line_step * static_cast<std::int64_t>(d);
            if (target < 0)
                break;
            Addr line = alignDown(static_cast<Addr>(target), lineBytes);
            if (line != last_line &&
                line != alignDown(addr, lineBytes)) {
                out.push_back(line);
                last_line = line;
            }
        }
        return out;
    }

    unsigned degree() const { return _degree; }

  private:
    struct TableEntry
    {
        std::uint32_t pc = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
    };

    unsigned _degree;
    unsigned _tableSize;
    // MDA_LINT_ALLOW(DET-2): keyed access by pc % _tableSize only,
    // never iterated; stride-table order cannot reach any output.
    std::unordered_map<std::uint32_t, TableEntry> _table;
};

} // namespace mda

#endif // MDA_CACHE_PREFETCHER_HH
