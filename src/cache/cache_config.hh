/**
 * @file
 * Cache geometry and latency configuration (paper Table I).
 */

#ifndef MDA_CACHE_CACHE_CONFIG_HH
#define MDA_CACHE_CACHE_CONFIG_HH

#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace mda
{

/** Static parameters of one cache level. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 32 * 1024;

    /** Associativity. */
    unsigned ways = 4;

    /** Tag array access latency (cycles). */
    Cycles tagLatency = 2;

    /** Data array access latency (cycles). */
    Cycles dataLatency = 2;

    /** Parallel tag/data (L1) vs sequential (L2/L3). */
    bool parallelTagData = true;

    /** Outstanding-miss capacity. */
    unsigned mshrs = 16;

    /** Coalesced targets per MSHR entry. */
    unsigned targetsPerMshr = 16;

    /** Writeback buffer entries. */
    unsigned writeBufferSize = 16;

    /** Enable the PC-stride prefetcher (baseline 1P1L only). */
    bool prefetch = false;

    /** 1P2L policy extension: serve an oriented line request whose
     *  eight words are all present in crossing lines by gathering
     *  them (paper Section IV-B calls this a policy decision for
     *  lower-level caches). Costs eight sequential tag+data accesses. */
    bool gatherHits = false;

    /** Prefetch lookahead degree. */
    unsigned prefetchDegree = 4;

    /** Cache-line-granular frames in this cache. */
    std::uint64_t
    numLines() const
    {
        return sizeBytes / lineBytes;
    }

    /** Sets for a line-granular organization. */
    std::uint64_t
    numSets() const
    {
        mda_assert(numLines() % ways == 0, "size/ways mismatch");
        // Non-power-of-two set counts (e.g. the paper's 1.5 MB LLC)
        // are supported via modulo indexing.
        return numLines() / ways;
    }

    /** Sets for a 512-byte tile-granular (2P2L) organization. */
    std::uint64_t
    numTileSets() const
    {
        std::uint64_t frames = sizeBytes / tileBytes;
        mda_assert(frames % ways == 0, "size/ways mismatch (tiles)");
        return frames / ways;
    }

    /** Latency of a hit (demand word/line served from this level). */
    Cycles
    hitLatency() const
    {
        return parallelTagData ? std::max(tagLatency, dataLatency)
                               : tagLatency + dataLatency;
    }

    /** Table I presets. */
    static CacheConfig
    l1D()
    {
        CacheConfig c;
        c.sizeBytes = 32 * 1024;
        c.ways = 4;
        c.tagLatency = 2;
        c.dataLatency = 2;
        c.parallelTagData = true;
        return c;
    }

    static CacheConfig
    l2(std::uint64_t size_bytes = 256 * 1024)
    {
        CacheConfig c;
        c.sizeBytes = size_bytes;
        c.ways = 8;
        c.tagLatency = 6;
        c.dataLatency = 9;
        c.parallelTagData = false;
        c.mshrs = 24;
        return c;
    }

    static CacheConfig
    l3(std::uint64_t size_bytes = 1024 * 1024)
    {
        CacheConfig c;
        c.sizeBytes = size_bytes;
        c.ways = 8;
        c.tagLatency = 8;
        c.dataLatency = 12;
        c.parallelTagData = false;
        c.mshrs = 32;
        return c;
    }
};

} // namespace mda

#endif // MDA_CACHE_CACHE_CONFIG_HH
