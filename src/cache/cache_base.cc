#include "cache_base.hh"

#include <bit>

#include "sim/debug.hh"
#include "sim/trace_event.hh"

namespace mda
{

CacheBase::CacheBase(const std::string &obj_name, EventQueue &eq,
                     stats::StatGroup &sg, const CacheConfig &config)
    : SimObject(obj_name, eq, sg),
      _config(config),
      _mshr(config.mshrs, config.targetsPerMshr)
{
    regScalar("demandAccesses", &_demandAccesses,
              "demand accesses (reads + writes)");
    regScalar("demandHits", &_demandHits, "demand hits");
    regScalar("demandMisses", &_demandMisses, "demand misses");
    regScalar("readHits", &_readHits, "read hits");
    regScalar("readMisses", &_readMisses, "read misses");
    regScalar("writeHits", &_writeHits, "write hits");
    regScalar("writeMisses", &_writeMisses, "write misses");
    regScalar("vectorHits", &_vectorHits, "SIMD/line hits");
    regScalar("vectorMisses", &_vectorMisses, "SIMD/line misses");
    regScalar("misOrientedHits", &_misOrientedHits,
              "scalar hits served from the non-preferred orientation");
    regScalar("partialHits", &_partialHits,
              "line accesses with only part of the words present");
    regScalar("mshrCoalesced", &_mshrCoalesced,
              "accesses coalesced into an existing MSHR entry");
    regScalar("deferrals", &_deferrals,
              "accesses deferred for overlapping-word ordering");
    regScalar("writebacksIn", &_writebacksIn,
              "writebacks received from above");
    regScalar("writebacksOut", &_writebacksOut,
              "writebacks sent downstream");
    regScalar("bytesWrittenBack", &_bytesWrittenBack,
              "bytes written back downstream");
    regScalar("fills", &_fills, "line fills received");
    regScalar("fillBytes", &_fillBytes, "bytes filled from below");
    regScalar("prefetchesIssued", &_prefetchesIssued,
              "prefetch fills issued");
    regScalar("prefetchesUseful", &_prefetchesUseful,
              "prefetched lines later hit by demand");
    regScalar("extraTagAccesses", &_extraTagAccesses,
              "additional tag probes (cross-orientation checks)");
    regScalar("evictions", &_evictions, "valid lines evicted");
    regDistribution("hitLatency", &_hitLatency,
                    "demand-hit response latency (cycles, 1-in-16 "
                    "sampled)");
    regDistribution("missLatency", &_missLatency,
                    "demand-miss fill round trip (cycles, 1-in-4 "
                    "sampled)");
}

void
CacheBase::regProbes(probe::ProbeManager &pm)
{
    pm.reg(name() + ".accepted", &_probes.accepted);
    pm.reg(name() + ".deferred", &_probes.deferred);
    pm.reg(name() + ".mshrQueued", &_probes.mshrQueued);
    pm.reg(name() + ".fillSent", &_probes.fillSent);
    pm.reg(name() + ".fillRecv", &_probes.fillRecv);
    pm.reg(name() + ".writebackOut", &_probes.writebackOut);
    pm.reg(name() + ".responded", &_probes.responded);
    pm.reg(name() + ".writeValidate", &_probes.writeValidate);
    pm.reg(name() + ".dupAction", &_probes.dupAction);
}

std::vector<std::string>
CacheBase::checkDrained() const
{
    std::vector<std::string> violations;
    _mshr.forEach([&](const MshrEntry &entry) {
        violations.push_back(
            name() + ": MSHR entry for " +
            orientName(entry.line.orient) + " line id " +
            std::to_string(entry.line.id) + " with " +
            std::to_string(entry.targets.size()) +
            " target(s) leaked after drain");
    });
    if (!_writeBuffer.empty()) {
        violations.push_back(
            name() + ": " + std::to_string(_writeBuffer.size()) +
            " writeback(s) stuck in the write buffer after drain");
    }
    if (!_deferred.empty()) {
        violations.push_back(
            name() + ": " + std::to_string(_deferred.size()) +
            " deferred packet(s) never replayed");
    }
    if (_inFlightLookups != 0) {
        violations.push_back(
            name() + ": " + std::to_string(_inFlightLookups) +
            " accepted lookup(s) never dispatched");
    }
    return violations;
}

bool
CacheBase::canAccept() const
{
    // Count lookups already accepted but not yet handled: each could
    // allocate an MSHR entry, so reserve space for them.
    return _mshr.size() + _inFlightLookups < _config.mshrs &&
           _writeBuffer.size() < _config.writeBufferSize &&
           _deferred.size() < maxDeferred;
}

bool
CacheBase::tryRequest(PacketPtr &pkt)
{
    if (!canAccept()) {
        _upstreamBlocked = true;
        return false;
    }
    if (MDA_OBSERVED()) {
        DPRINTF(Cache, "accept %s %s %#llx id %llu",
                cmdName(pkt->cmd), pkt->isLine() ? "line" : "word",
                (unsigned long long)pkt->addr,
                (unsigned long long)pkt->id);
        // Packet lifetime at this level: opened here, closed when the
        // response leaves (respond) — writebacks have no response.
        if (trace::on() && pkt->cmd != MemCmd::Writeback) {
            trace::log().asyncBegin(name(), cmdName(pkt->cmd),
                                    pkt->id, curTick());
        }
    }
    MDA_PROBE(_probes.accepted,
              probe::PacketEvent{pkt.get(), curTick(), 0});
    // Dispatch after the tag-lookup latency. Constant latency plus
    // FIFO event ordering preserves arrival order at the handlers.
    auto *raw = pkt.release();
    ++_inFlightLookups;
    eventq().scheduleAfter(_config.tagLatency, [this, raw] {
        PacketPtr p(raw);
        --_inFlightLookups;
        if (p->cmd == MemCmd::Writeback) {
            ++_writebacksIn;
            handleWriteback(std::move(p));
        } else {
            ++_demandAccesses;
            handleDemand(std::move(p));
        }
        // Dispatching released this lookup's reserved MSHR slot (and
        // the handler may have freed more); without a retry here an
        // upstream rejected against that reservation would wait for a
        // recvRetry that never comes once the queues drain.
        maybeUnblockUpstream();
    });
    return true;
}

void
CacheBase::recvResponse(PacketPtr pkt)
{
    mda_assert(pkt->isResponse && pkt->isLineFill,
               "cache received a non-fill response");
    ++_fills;
    _fillBytes += std::popcount(pkt->wordMask) * wordBytes;
    MDA_PROBE(_probes.fillRecv,
              probe::PacketEvent{pkt.get(), curTick(), 0});
    DPRINTF(Cache, "fill %#llx (%s)",
            (unsigned long long)pkt->addr,
            orientName(pkt->orient));
    handleFill(std::move(pkt));
    if (MDA_OBSERVED())
        traceMshrOccupancy();
    replayDeferred();
    maybeUnblockUpstream();
}

void
CacheBase::recvRetry()
{
    trySendQueues();
}

void
CacheBase::defer(PacketPtr pkt)
{
    ++_deferrals;
    MDA_PROBE(_probes.deferred,
              probe::PacketEvent{pkt.get(), curTick(), 0});
    DPRINTF(MSHR, "defer %s %#llx id %llu (overlap/full)",
            cmdName(pkt->cmd), (unsigned long long)pkt->addr,
            (unsigned long long)pkt->id);
    _deferred.push_back(std::move(pkt));
}

void
CacheBase::allocateMiss(PacketPtr pkt, const OrientedLine &line,
                        MshrEntry *entry)
{
    // The caller just looked @p line up in the MSHR (every miss path
    // does, to make its defer decision) and passes the result in so
    // the file is not scanned a second time. Slot storage is stable,
    // so the pointer survives the bookkeeping between the lookup and
    // this call.
    if (entry) {
        if (!_mshr.canTarget(*entry)) {
            defer(std::move(pkt));
            return;
        }
        if (entry->isPrefetch) {
            // A demand arrived for an in-flight prefetch.
            entry->isPrefetch = false;
            ++_prefetchesUseful;
        }
        ++_mshrCoalesced;
        MDA_PROBE(_probes.mshrQueued,
                  probe::PacketEvent{pkt.get(), curTick(), 0});
        DPRINTF(MSHR, "coalesce id %llu onto %#llx (%zu targets)",
                (unsigned long long)pkt->id,
                (unsigned long long)pkt->addr,
                entry->targets.size() + 1);
        entry->targets.push_back(std::move(pkt));
        return;
    }
    if (_mshr.full()) {
        // Replay/burst overflow: park until a fill retires an entry.
        defer(std::move(pkt));
        return;
    }
    MshrEntry &fresh = _mshr.alloc(line, false, curTick());
    fresh.pc = pkt->pc;
    MDA_PROBE(_probes.mshrQueued,
              probe::PacketEvent{pkt.get(), curTick(), 0});
    if (MDA_OBSERVED()) {
        DPRINTF(MSHR, "alloc %#llx (%s) for id %llu",
                (unsigned long long)pkt->addr, orientName(line.orient),
                (unsigned long long)pkt->id);
        traceMshrOccupancy();
    }
    fresh.targets.push_back(std::move(pkt));
    trySendQueues();
}

void
CacheBase::issuePrefetch(const OrientedLine &line)
{
    // overlaps() covers both "already in flight" (equal lines
    // intersect) and "crosses an in-flight line" in a single scan.
    if (_mshr.full() || _mshr.overlaps(line))
        return;
    _mshr.alloc(line, true, curTick());
    ++_prefetchesIssued;
    traceMshrOccupancy();
    trySendQueues();
}

void
CacheBase::pushWriteback(PacketPtr wb)
{
    mda_assert(wb->cmd == MemCmd::Writeback, "not a writeback");
    ++_writebacksOut;
    _bytesWrittenBack += std::popcount(wb->wordMask) * wordBytes;
    MDA_PROBE(_probes.writebackOut,
              probe::PacketEvent{wb.get(), curTick(), 0});
    _writeBuffer.push_back(std::move(wb));
    trySendQueues();
}

void
CacheBase::respond(PacketPtr pkt, Cycles delay)
{
    if (!pkt->isResponse)
        pkt->makeResponse();
    // Fired at schedule time with the delivery delay, so a listener
    // sees both when the level finished (curTick()) and when the
    // requester will (curTick() + delay).
    MDA_PROBE(_probes.responded,
              probe::PacketEvent{pkt.get(), curTick(), delay});
    if (MDA_UNLIKELY(trace::on())) {
        trace::log().asyncEnd(name(), cmdName(pkt->cmd), pkt->id,
                              curTick() + delay);
    }
    auto *raw = pkt.release();
    eventq().scheduleAfter(
        delay,
        [this, raw] {
            PacketPtr p(raw);
            mda_assert(_upstream, "response with no upstream");
            _upstream->recvResponse(std::move(p));
        },
        EventPriority::Response);
}

void
CacheBase::replayDeferred()
{
    if (_deferred.empty())
        return;
    std::deque<PacketPtr> pending;
    pending.swap(_deferred);
    for (auto &pkt : pending) {
        // Re-run through the handler; still-conflicting packets will
        // re-defer themselves (preserving relative order).
        if (pkt->cmd == MemCmd::Writeback)
            handleWriteback(std::move(pkt));
        else
            handleDemand(std::move(pkt));
    }
    maybeUnblockUpstream();
}

void
CacheBase::trySendQueues()
{
    mda_assert(_downstream, "cache with no downstream");
    // Writebacks drain strictly in order.
    while (!_writeBuffer.empty()) {
        if (!_downstream->tryRequest(_writeBuffer.front()))
            return; // downstream will retry us
        _writeBuffer.pop_front();
        maybeUnblockUpstream();
    }
    // Fills may go once no queued writeback overlaps them; with an
    // empty write buffer that is vacuously true.
    _mshr.visitUnsent([this](MshrEntry &entry) {
        auto fill = Packet::makeLineFill(entry.line, entry.isPrefetch,
                                         curTick(), packetPool());
        fill->pc = entry.pc;
        // The raw pointer stays valid past tryRequest: on acceptance
        // the downstream owns the packet (queued or scheduled), and
        // the probe fires before any of its events can run.
        const Packet *sent = fill.get();
        if (!_downstream->tryRequest(fill))
            return false; // downstream will retry us
        MDA_PROBE(_probes.fillSent,
                  probe::PacketEvent{sent, curTick(), 0});
        return true;      // the MSHR file marks the entry sent
    });
}

void
CacheBase::maybeUnblockUpstream()
{
    if (_upstreamBlocked && canAccept() && _upstream) {
        _upstreamBlocked = false;
        _upstream->recvRetry();
    }
}

} // namespace mda
