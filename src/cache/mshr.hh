/**
 * @file
 * Logically-2-D-aware MSHR file (paper Section IV-B).
 *
 * Entries are keyed by the *oriented* target line, so scalar misses to
 * different words of one column coalesce into a single column fetch —
 * the mechanism behind the paper's large L3-access reduction. The file
 * also answers the ordering question the paper raises: an incoming
 * access that word-overlaps an in-flight entry of a *crossing* line
 * must be deferred until that entry completes ("any overlapping writes
 * are blocked in the MSHR until the previous overlapping accesses have
 * finished").
 */

#ifndef MDA_CACHE_MSHR_HH
#define MDA_CACHE_MSHR_HH

#include <cstdint>
#include <list>
#include <vector>

#include "sim/logging.hh"
#include "sim/packet.hh"

namespace mda
{

/** One outstanding line fill and the accesses waiting on it. */
struct MshrEntry
{
    OrientedLine line;

    /** Fill request has been accepted downstream. */
    bool sent = false;

    /** Entry created by the prefetcher (no demand targets yet). */
    bool isPrefetch = false;

    /** PC of the first demand target; carried on the fill request so
     *  lower-level prefetchers can train on this cache's miss
     *  stream (0 for prefetch-generated fills). */
    std::uint32_t pc = 0;

    /** Demand packets to satisfy when the fill returns, in order. */
    std::vector<PacketPtr> targets;

    Tick allocTick = 0;
};

/** Fixed-capacity MSHR file. */
class MshrFile
{
  public:
    MshrFile(unsigned num_entries, unsigned targets_per_entry)
        : _capacity(num_entries), _targetCap(targets_per_entry)
    {}

    bool full() const { return _entries.size() >= _capacity; }
    bool empty() const { return _entries.empty(); }
    std::size_t size() const { return _entries.size(); }

    /** Find the in-flight entry for @p line, if any. */
    MshrEntry *
    find(const OrientedLine &line)
    {
        for (auto &e : _entries)
            if (e.line == line)
                return &e;
        return nullptr;
    }

    /** Whether @p entry can absorb one more target. */
    bool
    canTarget(const MshrEntry &entry) const
    {
        return entry.targets.size() < _targetCap;
    }

    /**
     * Whether @p line word-overlaps any in-flight entry other than an
     * entry for @p line itself (i.e. a crossing line of the same
     * tile, or the identical word set in the other orientation).
     */
    bool
    conflictsWith(const OrientedLine &line) const
    {
        for (const auto &e : _entries)
            if (!(e.line == line) && e.line.intersects(line))
                return true;
        return false;
    }

    /** Whether the single word at @p addr overlaps any entry. */
    bool
    wordConflicts(Addr addr, const OrientedLine &own_line) const
    {
        for (const auto &e : _entries)
            if (!(e.line == own_line) && e.line.containsWord(addr))
                return true;
        return false;
    }

    /** Allocate a new entry. @pre !full() && !find(line) */
    MshrEntry &
    alloc(const OrientedLine &line, bool is_prefetch, Tick now)
    {
        mda_assert(!full(), "MSHR overflow");
        mda_assert(!find(line), "duplicate MSHR entry");
        _entries.emplace_back();
        MshrEntry &e = _entries.back();
        e.line = line;
        e.isPrefetch = is_prefetch;
        e.allocTick = now;
        return e;
    }

    /** Remove a completed entry, returning it (targets and the
     *  allocation metadata the latency stats need). */
    MshrEntry
    retire(const OrientedLine &line)
    {
        for (auto it = _entries.begin(); it != _entries.end(); ++it) {
            if (it->line == line) {
                MshrEntry entry = std::move(*it);
                _entries.erase(it);
                return entry;
            }
        }
        panic("retiring unknown MSHR entry");
    }

    /** Entries not yet sent downstream (for retry processing). */
    std::vector<MshrEntry *>
    unsent()
    {
        std::vector<MshrEntry *> out;
        for (auto &e : _entries)
            if (!e.sent)
                out.push_back(&e);
        return out;
    }

    /** All in-flight entries (tests/occupancy probes). */
    const std::list<MshrEntry> &entries() const { return _entries; }

  private:
    unsigned _capacity;
    unsigned _targetCap;
    std::list<MshrEntry> _entries;
};

} // namespace mda

#endif // MDA_CACHE_MSHR_HH
