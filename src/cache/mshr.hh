/**
 * @file
 * Logically-2-D-aware MSHR file (paper Section IV-B).
 *
 * Entries are keyed by the *oriented* target line, so scalar misses to
 * different words of one column coalesce into a single column fetch —
 * the mechanism behind the paper's large L3-access reduction. The file
 * also answers the ordering question the paper raises: an incoming
 * access that word-overlaps an in-flight entry of a *crossing* line
 * must be deferred until that entry completes ("any overlapping writes
 * are blocked in the MSHR until the previous overlapping accesses have
 * finished").
 */

#ifndef MDA_CACHE_MSHR_HH
#define MDA_CACHE_MSHR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/packet.hh"

namespace mda
{

/** One outstanding line fill and the accesses waiting on it. */
struct MshrEntry
{
    OrientedLine line;

    /** Fill request has been accepted downstream. */
    bool sent = false;

    /** Entry created by the prefetcher (no demand targets yet). */
    bool isPrefetch = false;

    /** PC of the first demand target; carried on the fill request so
     *  lower-level prefetchers can train on this cache's miss
     *  stream (0 for prefetch-generated fills). */
    std::uint32_t pc = 0;

    /** Demand packets to satisfy when the fill returns, in order. */
    std::vector<PacketPtr> targets;

    Tick allocTick = 0;
};

/**
 * Fixed-capacity MSHR file.
 *
 * Entries live in fixed slots; a side list of slot indices maintains
 * allocation order (which fill-send order, and hence determinism,
 * depends on). Fills retire roughly FIFO, so an ordered erase from a
 * vector *of entries* would shift nearly the whole file on every
 * fill; erasing from the byte-sized index list moves at most
 * `capacity` bytes, and slot reuse keeps entry storage stable without
 * any allocation on the miss path.
 */
class MshrFile
{
  public:
    MshrFile(unsigned num_entries, unsigned targets_per_entry)
        : _capacity(num_entries), _targetCap(targets_per_entry),
          _slots(num_entries)
    {
        mda_assert(num_entries > 0 && num_entries <= 255,
                   "unsupported MSHR entry count %u", num_entries);
        _order.reserve(num_entries);
        _freeSlots.reserve(num_entries);
        // Reverse order so slot 0 is handed out first; slot choice
        // never affects simulated behavior (ordering runs off
        // _order), this just keeps layouts compact.
        for (unsigned i = num_entries; i-- > 0;)
            _freeSlots.push_back(static_cast<std::uint8_t>(i));
    }

    bool full() const { return _order.size() >= _capacity; }
    bool empty() const { return _order.empty(); }
    std::size_t size() const { return _order.size(); }

    /** Find the in-flight entry for @p line, if any. */
    MshrEntry *
    find(const OrientedLine &line)
    {
        if (!mayHoldTile(line.tile()))
            return nullptr;
        for (std::uint8_t slot : _order)
            if (_slots[slot].line == line)
                return &_slots[slot];
        return nullptr;
    }

    /**
     * Single-scan combination of find() and conflictsWith(): returns
     * the entry for @p line (or null) and sets @p conflicts when some
     * *other* in-flight entry word-overlaps @p line. The demand-miss
     * hot path uses this instead of two separate scans.
     */
    MshrEntry *
    findWithConflict(const OrientedLine &line, bool &conflicts)
    {
        conflicts = false;
        if (!mayHoldTile(line.tile()))
            return nullptr;
        MshrEntry *found = nullptr;
        for (std::uint8_t slot : _order) {
            MshrEntry &e = _slots[slot];
            if (e.line == line)
                found = &e;
            else if (e.line.intersects(line))
                conflicts = true;
        }
        return found;
    }

    /** Whether @p entry can absorb one more target. */
    bool
    canTarget(const MshrEntry &entry) const
    {
        return entry.targets.size() < _targetCap;
    }

    /**
     * Whether @p line word-overlaps any in-flight entry other than an
     * entry for @p line itself (i.e. a crossing line of the same
     * tile, or the identical word set in the other orientation).
     */
    bool
    conflictsWith(const OrientedLine &line) const
    {
        if (!mayHoldTile(line.tile()))
            return false;
        for (std::uint8_t slot : _order) {
            const MshrEntry &e = _slots[slot];
            if (!(e.line == line) && e.line.intersects(line))
                return true;
        }
        return false;
    }

    /**
     * Whether @p line word-overlaps *any* in-flight entry, including
     * an entry for @p line itself. Equivalent to
     * `find(line) || conflictsWith(line)` (equal lines intersect), in
     * one scan — the prefetch-issue hot path uses this.
     */
    bool
    overlaps(const OrientedLine &line) const
    {
        if (!mayHoldTile(line.tile()))
            return false;
        for (std::uint8_t slot : _order)
            if (_slots[slot].line.intersects(line))
                return true;
        return false;
    }

    /** Whether the single word at @p addr overlaps any entry.
     *  @pre own_line.containsWord(addr) — any entry covering the word
     *  therefore shares own_line's tile, which lets the tile filter
     *  apply here too. */
    bool
    wordConflicts(Addr addr, const OrientedLine &own_line) const
    {
        if (!mayHoldTile(own_line.tile()))
            return false;
        for (std::uint8_t slot : _order) {
            const MshrEntry &e = _slots[slot];
            if (!(e.line == own_line) && e.line.containsWord(addr))
                return true;
        }
        return false;
    }

    /** Whether any in-flight entry targets a line of @p tile. */
    bool
    pinsTile(std::uint64_t tile) const
    {
        if (!mayHoldTile(tile))
            return false;
        for (std::uint8_t slot : _order)
            if (_slots[slot].line.tile() == tile)
                return true;
        return false;
    }

    /** Allocate a new entry. @pre !full() && !find(line) */
    MshrEntry &
    alloc(const OrientedLine &line, bool is_prefetch, Tick now)
    {
        mda_assert(!full(), "MSHR overflow");
        mda_assert(!find(line), "duplicate MSHR entry");
        std::uint8_t slot = _freeSlots.back();
        _freeSlots.pop_back();
        MshrEntry &e = _slots[slot];
        // Slots are reused: reset every field a fresh entry carries.
        e.line = line;
        e.sent = false;
        e.isPrefetch = is_prefetch;
        e.pc = 0;
        e.allocTick = now;
        mda_assert(e.targets.empty(), "reused MSHR slot has targets");
        _order.push_back(slot);
        ++_unsentCount;
        ++_tileCount[line.tile() & (tileBuckets - 1)];
        return e;
    }

    /** Remove a completed entry, returning it (targets and the
     *  allocation metadata the latency stats need). */
    MshrEntry
    retire(const OrientedLine &line)
    {
        for (auto it = _order.begin(); it != _order.end(); ++it) {
            MshrEntry &e = _slots[*it];
            if (!(e.line == line))
                continue;
            MshrEntry out = std::move(e);
            if (!out.sent)
                --_unsentCount;
            --_tileCount[out.line.tile() & (tileBuckets - 1)];
            // A moved-from vector's state is unspecified; pin the
            // slot back to "no targets" for the next alloc.
            e.targets.clear();
            _freeSlots.push_back(*it);
            // Ordered erase so the remaining entries keep allocation
            // order; shifting byte indices costs at most _capacity
            // bytes of movement.
            _order.erase(it);
            return out;
        }
        panic("retiring unknown MSHR entry");
    }

    /** Whether any entry is still waiting to be sent downstream. */
    bool hasUnsent() const { return _unsentCount != 0; }

    /**
     * Visit entries not yet sent downstream, in allocation order;
     * @p visit returns true when it sent the fill (the file then marks
     * the entry sent), false to stop early (downstream is full).
     * Iterates in place — no snapshot, no allocation — which is safe
     * because sending a fill never re-enters this MSHR file. A live
     * unsent counter makes the common nothing-to-send call O(1): the
     * send-retry path runs after every completion, but usually every
     * entry has already been sent.
     */
    template <typename Visit>
    void
    visitUnsent(Visit &&visit)
    {
        if (_unsentCount == 0)
            return;
        for (std::uint8_t slot : _order) {
            MshrEntry &e = _slots[slot];
            if (e.sent)
                continue;
            if (!visit(e))
                return;
            e.sent = true;
            if (--_unsentCount == 0)
                return;
        }
    }

    /** Entries not yet sent downstream (tests; the simulator proper
     *  uses the allocation-free visitUnsent). */
    std::vector<MshrEntry *>
    unsent()
    {
        std::vector<MshrEntry *> out;
        for (std::uint8_t slot : _order)
            if (!_slots[slot].sent)
                out.push_back(&_slots[slot]);
        return out;
    }

    /** Visit every in-flight entry in allocation order (drain checks,
     *  occupancy probes, tests). */
    template <typename Visit>
    void
    forEach(Visit &&visit) const
    {
        for (std::uint8_t slot : _order)
            visit(_slots[slot]);
    }

  private:
    unsigned _capacity;
    unsigned _targetCap;

    /** Entry storage, indexed by slot; stable for an entry's
     *  lifetime. */
    std::vector<MshrEntry> _slots;

    /** Slots of live entries, in allocation order. */
    std::vector<std::uint8_t> _order;

    /** Recycled slot indices (LIFO by retire order — simulation
     *  state, never addresses). */
    std::vector<std::uint8_t> _freeSlots;

    /** Live entries with sent == false (early-out for visitUnsent). */
    unsigned _unsentCount = 0;

    /** Buckets in the aliased per-tile entry counts. */
    static constexpr std::size_t tileBuckets = 256;

    /**
     * Any entry that intersects a line, covers one of its words, or
     * equals it outright shares that line's tile (equal orientation
     * implies equal id implies equal tile; crossing orientation tests
     * tile equality directly). A zero count for the line's aliased
     * tile therefore rules the whole scan family out in O(1); a
     * nonzero count (possibly a tile collision) falls through to the
     * exact scan. Updated only on alloc/retire — simulation state,
     * never addresses.
     */
    bool
    mayHoldTile(std::uint64_t tile) const
    {
        return _tileCount[tile & (tileBuckets - 1)] != 0;
    }

    std::array<std::uint8_t, tileBuckets> _tileCount{};
};

} // namespace mda

#endif // MDA_CACHE_MSHR_HH
