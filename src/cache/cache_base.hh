/**
 * @file
 * Common machinery for all cache levels.
 *
 * CacheBase owns the pieces every design point shares: the 2-D-aware
 * MSHR file, the writeback buffer, upstream/downstream flow control,
 * the overlapping-access deferral queue, and the common statistics.
 * Subclasses (LineCache for 1P1L/1P2L, TileCache for sparse 2P2L)
 * implement lookup, fill, and policy.
 *
 * Ordering guarantees provided here:
 *  - an access that word-overlaps an in-flight crossing MSHR entry is
 *    deferred until that entry completes (2-D MSHR ordering);
 *  - a fill request is never sent downstream while an overlapping
 *    writeback sits in the write buffer (modified data is propagated
 *    down before a duplicate copy is fetched).
 */

#ifndef MDA_CACHE_CACHE_BASE_HH
#define MDA_CACHE_CACHE_BASE_HH

#include <deque>
#include <string>
#include <vector>

#include "cache_config.hh"
#include "mshr.hh"
#include "sim/debug.hh"
#include "sim/port.hh"
#include "sim/probe.hh"
#include "sim/sim_object.hh"
#include "sim/trace_event.hh"

namespace mda
{

/** Abstract cache level. */
class CacheBase : public SimObject, public MemDevice, public MemClient
{
  public:
    CacheBase(const std::string &name, EventQueue &eq,
              stats::StatGroup &sg, const CacheConfig &config);

    // MemDevice (requests from the level above / CPU)
    bool tryRequest(PacketPtr &pkt) override;
    void setUpstream(MemClient *client) override { _upstream = client; }

    // MemClient (responses from the level below)
    void recvResponse(PacketPtr pkt) override;
    void recvRetry() override;

    /** Connect the next level (cache or memory). */
    void setDownstream(MemDevice *dev) { _downstream = dev; }

    const CacheConfig &config() const { return _config; }

    /** Register this level's lifecycle probe points with @p pm under
     *  "<name>.<probe>" (e.g. "l1.mshrQueued"). */
    void regProbes(probe::ProbeManager &pm);

    /**
     * Structural-invariant sweep (the mda_fuzz debug hook): verify
     * every internal consistency rule that must hold *between* events
     * and return a human-readable description of each violation (an
     * empty vector means the cache is consistent). Subclasses check
     * their storage (dirty bits only on valid words, no two dirty
     * copies of one word across intersecting lines, presence-bit
     * bookkeeping); the base implementation has nothing to add.
     *
     * O(frames) per call — meant for MDA_FUZZ_CHECKS-style stepped
     * runs over tiny caches, not for the simulation fast path.
     */
    virtual std::vector<std::string> checkInvariants() const
    {
        return {};
    }

    /**
     * Drain-time checks: once the event queue is quiescent, no MSHR
     * entry (or coalesced target), queued writeback, or deferred
     * packet may survive — a leftover means a request was leaked.
     */
    std::vector<std::string> checkDrained() const;

  protected:
    /** Demand access (Read/Write; scalar, vector, or line fill from an
     *  upper cache), invoked after the tag-lookup latency. */
    virtual void handleDemand(PacketPtr pkt) = 0;

    /** Writeback from the level above, after lookup latency. */
    virtual void handleWriteback(PacketPtr pkt) = 0;

    /** Fill response from below (demand or prefetch). */
    virtual void handleFill(PacketPtr pkt) = 0;

    // ---- services for subclasses ----

    /** Park @p pkt until an in-flight conflicting entry completes. */
    void defer(PacketPtr pkt);

    /**
     * Record a miss on @p line: coalesce into @p entry — the caller's
     * MSHR lookup result for @p line, null if none — or allocate a
     * new entry and try to send the fill downstream.
     * @pre the caller has checked conflictsWith(), and @p entry is
     *      the current find(line) result (no MSHR mutation between).
     */
    void allocateMiss(PacketPtr pkt, const OrientedLine &line,
                      MshrEntry *entry);

    /** Allocate a prefetch fill for @p line if resources allow. */
    void issuePrefetch(const OrientedLine &line);

    /** Queue a writeback packet toward the next level. */
    void pushWriteback(PacketPtr wb);

    /** Complete @p pkt back to the requester after @p delay cycles. */
    void respond(PacketPtr pkt, Cycles delay);

    /** respond() for demand hits: also samples the hit-latency
     *  distribution and closes the packet's trace slice. Inline:
     *  runs once per hit, the hottest path in the simulator, so the
     *  near-constant hit latency is decimated 1-in-16 (misses, whose
     *  round trips actually vary, are sampled exactly). */
    void
    respondHit(PacketPtr pkt, Cycles delay)
    {
        if (MDA_UNLIKELY((++_hitSampleTick & (hitSampleInterval - 1))
                         == 0)) {
            _hitLatency.sample(
                static_cast<double>(_config.tagLatency + delay));
        }
        if (MDA_UNLIKELY(trace::on()))
            trace::log().instant(name(), "hit", curTick());
        respond(std::move(pkt), delay);
    }

    /** Sample the demand round trip of a just-retired MSHR entry
     *  (inline: runs once per fill). Prefetch fills are excluded.
     *  Decimated 1-in-4: fills are frequent enough that the round
     *  trip distribution converges with a fraction of the samples. */
    void
    noteMissLatency(const MshrEntry &entry)
    {
        if (!entry.isPrefetch &&
            (++_missSampleTick & (missSampleInterval - 1)) == 0) {
            _missLatency.sample(
                static_cast<double>(curTick() - entry.allocTick));
        }
    }

    /** Emit the MSHR-occupancy counter sample (when tracing). */
    void
    traceMshrOccupancy()
    {
        if (MDA_UNLIKELY(trace::on())) {
            trace::log().counter(name(), "mshrOccupancy", curTick(),
                                 static_cast<double>(_mshr.size()));
        }
    }

    /** Re-process all deferred packets (after a fill completes). */
    void replayDeferred();

    /** Drain the write buffer, then any unsent fills (in that order
     *  for overlapping lines). */
    void trySendQueues();

    /** Wake a blocked upstream if resources freed up. */
    void maybeUnblockUpstream();

    /** Resources left for a new request? */
    bool canAccept() const;

    /** Packet-lifecycle probe points (see probe.hh's catalog). The
     *  subclass-specific points (writeValidate, dupAction) live here
     *  too so every level exposes the same catalog. */
    probe::CacheProbes _probes;

    CacheConfig _config;
    MshrFile _mshr;
    std::deque<PacketPtr> _writeBuffer;
    std::deque<PacketPtr> _deferred;

    /** Accepted requests whose lookup has not yet completed. */
    unsigned _inFlightLookups = 0;

    MemClient *_upstream = nullptr;
    MemDevice *_downstream = nullptr;
    bool _upstreamBlocked = false;

    // ---- statistics (shared across cache designs) ----
    stats::Scalar _demandAccesses;
    stats::Scalar _demandHits, _demandMisses;
    stats::Scalar _readHits, _readMisses;
    stats::Scalar _writeHits, _writeMisses;
    stats::Scalar _vectorHits, _vectorMisses;
    stats::Scalar _misOrientedHits;
    stats::Scalar _partialHits;
    stats::Scalar _mshrCoalesced;
    stats::Scalar _deferrals;
    stats::Scalar _writebacksIn, _writebacksOut;
    stats::Scalar _bytesWrittenBack;
    stats::Scalar _fills, _fillBytes;
    stats::Scalar _prefetchesIssued, _prefetchesUseful;
    stats::Scalar _extraTagAccesses;
    stats::Scalar _evictions;

    /** Per-level demand latency, split by outcome: hits sample the
     *  response delay (decimated), misses the MSHR allocate-to-fill
     *  round trip (exact). */
    stats::Distribution _hitLatency{0, 100, 20};
    stats::Distribution _missLatency{0, 2000, 20};

  private:
    /** Latency-sampling decimation factors (powers of two). */
    static constexpr unsigned hitSampleInterval = 16;
    static constexpr unsigned missSampleInterval = 4;
    unsigned _hitSampleTick = 0;
    unsigned _missSampleTick = 0;

    static constexpr std::size_t maxDeferred = 64;
};

} // namespace mda

#endif // MDA_CACHE_CACHE_BASE_HH
