/**
 * @file
 * Set-associative storage for oriented cache lines.
 *
 * Identity is the full OrientedLine (orientation + line id); the set
 * index is supplied by the cache (Different-Set vs Same-Set mapping is
 * a property of the cache, not the storage). Entries carry real data
 * plus a per-word dirty mask — the paper's "1 extra dirty bit per
 * word" that enables partial writebacks under false sharing of
 * intersecting lines.
 */

#ifndef MDA_CACHE_STORAGE_HH
#define MDA_CACHE_STORAGE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/logging.hh"
#include "sim/orientation.hh"
#include "sim/packet.hh"

namespace mda
{

/**
 * One line frame: tag metadata only. The 64 B data block lives in a
 * separate plane owned by LineStorage, so the tag scans in find() and
 * victim() — the lookup hot path — stream over ~40 B entries instead
 * of ~100 B ones. `dataBlock` is wired once at construction and is
 * stable for the storage's lifetime.
 */
struct CacheEntry
{
    OrientedLine line;
    bool valid = false;
    bool prefetched = false; ///< Installed by prefetch, not yet used.
    std::uint8_t dirtyMask = 0;
    std::uint64_t lruStamp = 0;
    std::uint8_t *dataBlock = nullptr;

    bool dirty() const { return dirtyMask != 0; }

    std::uint8_t *data() { return dataBlock; }
    const std::uint8_t *data() const { return dataBlock; }

    std::uint64_t
    word(unsigned k) const
    {
        std::uint64_t v;
        std::memcpy(&v, dataBlock + k * wordBytes, wordBytes);
        return v;
    }

    void
    setWord(unsigned k, std::uint64_t v, bool mark_dirty)
    {
        std::memcpy(dataBlock + k * wordBytes, &v, wordBytes);
        if (mark_dirty)
            dirtyMask |= static_cast<std::uint8_t>(1u << k);
    }
};

/** Fixed-geometry set-associative array of CacheEntry frames. */
class LineStorage
{
  public:
    LineStorage(std::uint64_t num_sets, unsigned ways)
        : _sets(num_sets), _ways(ways),
          _entries(num_sets * ways), _data(num_sets * ways)
    {
        mda_assert(num_sets > 0 && ways > 0, "empty storage");
        // Both vectors are fixed-size for the storage's lifetime, so
        // the data-plane pointers never dangle.
        for (std::size_t i = 0; i < _entries.size(); ++i)
            _entries[i].dataBlock = _data[i].data();
        for (auto &occ : _tileOcc)
            occ.assign(tileOccBuckets, 0);
    }

    std::uint64_t numSets() const { return _sets; }
    unsigned ways() const { return _ways; }

    /** Find a valid entry holding exactly @p line in @p set. */
    CacheEntry *
    find(std::uint64_t set, const OrientedLine &line)
    {
        CacheEntry *base = setBase(set);
        for (unsigned w = 0; w < _ways; ++w) {
            CacheEntry &e = base[w];
            if (e.valid && e.line == line)
                return &e;
        }
        return nullptr;
    }

    /**
     * Pick a victim frame in @p set: an invalid way if one exists,
     * else the LRU valid way. Never returns null.
     */
    CacheEntry *
    victim(std::uint64_t set)
    {
        CacheEntry *base = setBase(set);
        CacheEntry *lru = &base[0];
        for (unsigned w = 0; w < _ways; ++w) {
            CacheEntry &e = base[w];
            if (!e.valid)
                return &e;
            if (e.lruStamp < lru->lruStamp)
                lru = &e;
        }
        return lru;
    }

    /**
     * victim() fused with a duplicate check: one sweep of @p set that
     * both picks the victim (same policy as victim(): first invalid
     * way, else LRU) and panics if @p line is already present. The
     * fill path uses this instead of a lookup-assert plus a second
     * victim scan.
     */
    CacheEntry *
    victimForInstall(std::uint64_t set, const OrientedLine &line)
    {
        CacheEntry *base = setBase(set);
        CacheEntry *lru = &base[0];
        CacheEntry *invalid = nullptr;
        for (unsigned w = 0; w < _ways; ++w) {
            CacheEntry &e = base[w];
            if (!e.valid) {
                if (!invalid)
                    invalid = &e;
                continue;
            }
            mda_assert(!(e.line == line),
                       "fill for an already-present line");
            if (e.lruStamp < lru->lruStamp)
                lru = &e;
        }
        return invalid ? invalid : lru;
    }

    /** Update recency on @p entry. */
    void touch(CacheEntry *entry) { entry->lruStamp = ++_clock; }

    /** Mark @p entry invalid and clean. */
    void
    invalidate(CacheEntry *entry)
    {
        if (entry->valid) {
            if (entry->line.orient == Orientation::Col)
                --_validColLines;
            else
                --_validRowLines;
            --occSlot(entry->line);
        }
        entry->valid = false;
        entry->dirtyMask = 0;
    }

    /**
     * Install @p line into @p entry (which must be invalid).
     *
     * The recycled data block is NOT cleared: every installer (fill,
     * full-line write allocation) overwrites all 64 bytes immediately
     * after, so zeroing here would be pure overhead on the fill path.
     * A new caller that installs without writing the whole block must
     * clear it itself.
     */
    void
    install(CacheEntry *entry, const OrientedLine &line)
    {
        mda_assert(!entry->valid, "installing over a valid entry");
        entry->valid = true;
        entry->line = line;
        entry->prefetched = false;
        entry->dirtyMask = 0;
        touch(entry);
        if (line.orient == Orientation::Col)
            ++_validColLines;
        else
            ++_validRowLines;
        ++occSlot(line);
    }

    /**
     * Whether any valid line of orientation @p o and tile @p tile may
     * be resident. Tiles alias into a fixed table, so `true` can be a
     * false positive (caller probes and finds nothing) but `false` is
     * exact — the basis for skipping crossing-line probe sweeps.
     */
    bool
    mayHoldTileLines(Orientation o, std::uint64_t tile) const
    {
        const auto &occ = _tileOcc[o == Orientation::Col];
        return occ[tile & (tileOccBuckets - 1)] != 0;
    }

    /** Iterate the ways of a set (for tests and policy probes). */
    CacheEntry *setBase(std::uint64_t set)
    {
        mda_assert(set < _sets, "set out of range");
        return &_entries[set * _ways];
    }

    const CacheEntry *setBase(std::uint64_t set) const
    {
        mda_assert(set < _sets, "set out of range");
        return &_entries[set * _ways];
    }

    /** Currently valid column-oriented lines (Fig. 15 occupancy). */
    std::uint64_t validColLines() const { return _validColLines; }
    std::uint64_t validRowLines() const { return _validRowLines; }

  private:
    /** Buckets in the per-orientation tile-occupancy tables. Power of
     *  two; exact per tile for matrices up to 2048x2048, aliased (and
     *  therefore conservative) beyond. */
    static constexpr std::size_t tileOccBuckets = std::size_t{1} << 16;

    std::uint32_t &
    occSlot(const OrientedLine &line)
    {
        return _tileOcc[line.orient == Orientation::Col]
                       [line.tile() & (tileOccBuckets - 1)];
    }

    std::uint64_t _sets;
    unsigned _ways;
    std::vector<CacheEntry> _entries;
    /** Data plane, parallel to _entries (see CacheEntry comment). */
    std::vector<std::array<std::uint8_t, lineBytes>> _data;
    /** Valid-line counts per (orientation, aliased tile); updated on
     *  install/invalidate only, so the counts are simulation state,
     *  never address-derived. */
    std::array<std::vector<std::uint32_t>, 2> _tileOcc;
    std::uint64_t _clock = 0;
    std::uint64_t _validColLines = 0;
    std::uint64_t _validRowLines = 0;
};

} // namespace mda

#endif // MDA_CACHE_STORAGE_HH
