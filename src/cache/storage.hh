/**
 * @file
 * Set-associative storage for oriented cache lines.
 *
 * Identity is the full OrientedLine (orientation + line id); the set
 * index is supplied by the cache (Different-Set vs Same-Set mapping is
 * a property of the cache, not the storage). Entries carry real data
 * plus a per-word dirty mask — the paper's "1 extra dirty bit per
 * word" that enables partial writebacks under false sharing of
 * intersecting lines.
 */

#ifndef MDA_CACHE_STORAGE_HH
#define MDA_CACHE_STORAGE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/orientation.hh"
#include "sim/packet.hh"

namespace mda
{

/** One line frame. */
struct CacheEntry
{
    OrientedLine line;
    bool valid = false;
    bool prefetched = false; ///< Installed by prefetch, not yet used.
    std::uint8_t dirtyMask = 0;
    std::uint64_t lruStamp = 0;
    std::array<std::uint8_t, lineBytes> data{};

    bool dirty() const { return dirtyMask != 0; }

    std::uint64_t
    word(unsigned k) const
    {
        std::uint64_t v;
        std::memcpy(&v, data.data() + k * wordBytes, wordBytes);
        return v;
    }

    void
    setWord(unsigned k, std::uint64_t v, bool mark_dirty)
    {
        std::memcpy(data.data() + k * wordBytes, &v, wordBytes);
        if (mark_dirty)
            dirtyMask |= static_cast<std::uint8_t>(1u << k);
    }
};

/** Fixed-geometry set-associative array of CacheEntry frames. */
class LineStorage
{
  public:
    LineStorage(std::uint64_t num_sets, unsigned ways)
        : _sets(num_sets), _ways(ways),
          _entries(num_sets * ways)
    {
        mda_assert(num_sets > 0 && ways > 0, "empty storage");
    }

    std::uint64_t numSets() const { return _sets; }
    unsigned ways() const { return _ways; }

    /** Find a valid entry holding exactly @p line in @p set. */
    CacheEntry *
    find(std::uint64_t set, const OrientedLine &line)
    {
        CacheEntry *base = setBase(set);
        for (unsigned w = 0; w < _ways; ++w) {
            CacheEntry &e = base[w];
            if (e.valid && e.line == line)
                return &e;
        }
        return nullptr;
    }

    /**
     * Pick a victim frame in @p set: an invalid way if one exists,
     * else the LRU valid way. Never returns null.
     */
    CacheEntry *
    victim(std::uint64_t set)
    {
        CacheEntry *base = setBase(set);
        CacheEntry *lru = &base[0];
        for (unsigned w = 0; w < _ways; ++w) {
            CacheEntry &e = base[w];
            if (!e.valid)
                return &e;
            if (e.lruStamp < lru->lruStamp)
                lru = &e;
        }
        return lru;
    }

    /** Update recency on @p entry. */
    void touch(CacheEntry *entry) { entry->lruStamp = ++_clock; }

    /** Mark @p entry invalid and clean. */
    void
    invalidate(CacheEntry *entry)
    {
        if (entry->valid && entry->line.orient == Orientation::Col)
            --_validColLines;
        else if (entry->valid)
            --_validRowLines;
        entry->valid = false;
        entry->dirtyMask = 0;
    }

    /** Install @p line into @p entry (which must be invalid). */
    void
    install(CacheEntry *entry, const OrientedLine &line)
    {
        mda_assert(!entry->valid, "installing over a valid entry");
        entry->valid = true;
        entry->line = line;
        entry->prefetched = false;
        entry->dirtyMask = 0;
        entry->data.fill(0);
        touch(entry);
        if (line.orient == Orientation::Col)
            ++_validColLines;
        else
            ++_validRowLines;
    }

    /** Iterate the ways of a set (for tests and policy probes). */
    CacheEntry *setBase(std::uint64_t set)
    {
        mda_assert(set < _sets, "set out of range");
        return &_entries[set * _ways];
    }

    const CacheEntry *setBase(std::uint64_t set) const
    {
        mda_assert(set < _sets, "set out of range");
        return &_entries[set * _ways];
    }

    /** Currently valid column-oriented lines (Fig. 15 occupancy). */
    std::uint64_t validColLines() const { return _validColLines; }
    std::uint64_t validRowLines() const { return _validRowLines; }

  private:
    std::uint64_t _sets;
    unsigned _ways;
    std::vector<CacheEntry> _entries;
    std::uint64_t _clock = 0;
    std::uint64_t _validColLines = 0;
    std::uint64_t _validRowLines = 0;
};

} // namespace mda

#endif // MDA_CACHE_STORAGE_HH
