/**
 * @file
 * Set-associative storage for oriented cache lines and sparse tiles,
 * in structure-of-arrays layout.
 *
 * Identity is the full OrientedLine (orientation + line id); the set
 * index is supplied by the cache (Different-Set vs Same-Set mapping is
 * a property of the cache, not the storage). Entries carry real data
 * plus a per-word dirty mask — the paper's "1 extra dirty bit per
 * word" that enables partial writebacks under false sharing of
 * intersecting lines.
 *
 * Layout: one parallel vector per metadata field, indexed by a flat
 * slot = set * ways + way. The tag array packs (line id, orientation)
 * into a single 64-bit key whose invalid sentinel can never collide
 * with a real line, so the lookup hot path — find(), victim(),
 * victimForInstall(), the crossing-line presence sweep — is a
 * single-compare linear scan over one contiguous array instead of a
 * pointer walk over multi-field objects. Recency doubles as the valid
 * encoding for victim search: invalid slots hold stamp 0 and live
 * stamps start at 1, so "first invalid way, else LRU" is one strict-<
 * minimum scan.
 */

#ifndef MDA_CACHE_STORAGE_HH
#define MDA_CACHE_STORAGE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/orientation.hh"
#include "sim/packet.hh"

namespace mda
{

/** Flat frame index into a storage's parallel arrays. */
using StorageSlot = std::uint32_t;

/** "No frame": find() misses and every-way-pinned allocations. */
inline constexpr StorageSlot kNoSlot = ~StorageSlot{0};

/** SoA set-associative array of oriented-line frames. */
class LineStorage
{
  public:
    LineStorage(std::uint64_t num_sets, unsigned ways)
        : _sets(num_sets), _ways(ways),
          _keys(num_sets * ways, invalidKey),
          _lru(num_sets * ways, 0),
          _dirty(num_sets * ways, 0),
          _prefetched(num_sets * ways, 0),
          _data(num_sets * ways)
    {
        mda_assert(num_sets > 0 && ways > 0, "empty storage");
        for (auto &occ : _tileOcc)
            occ.assign(tileOccBuckets, 0);
    }

    std::uint64_t numSets() const { return _sets; }
    unsigned ways() const { return _ways; }

    /**
     * Tag-array key of @p line: id and orientation packed so one
     * 64-bit compare decides both identity and validity. The key
     * shares the line's field layout shifted up one bit —
     * (tile << 4) | (index << 1) | orient — which is what lets the
     * crossing-line sweep match a whole tile with one shift.
     */
    static std::uint64_t
    packedKey(const OrientedLine &line)
    {
        // < 2^62 keeps the key clear of the invalid sentinel AND
        // keeps (tile << 4) in crossingMask() unambiguous against it.
        mda_assert(line.id < (std::uint64_t{1} << 62),
                   "line id collides with the invalid-key sentinel");
        return (line.id << 1) |
               (line.orient == Orientation::Col ? 1u : 0u);
    }

    /** Inverse of packedKey(). @pre valid(slot) */
    OrientedLine
    line(StorageSlot slot) const
    {
        std::uint64_t key = _keys[slot];
        mda_assert(key != invalidKey, "line() on an invalid slot");
        return OrientedLine(
            (key & 1) ? Orientation::Col : Orientation::Row, key >> 1);
    }

    bool valid(StorageSlot slot) const
    {
        return _keys[slot] != invalidKey;
    }

    /** Flat slot of (@p set, @p way). */
    StorageSlot
    slotOf(std::uint64_t set, unsigned way) const
    {
        mda_assert(set < _sets && way < _ways, "frame out of range");
        return static_cast<StorageSlot>(set * _ways + way);
    }

    /** Find the valid slot holding exactly @p line in @p set. */
    StorageSlot
    find(std::uint64_t set, const OrientedLine &line) const
    {
        std::uint64_t key = packedKey(line);
        const std::uint64_t *tags = &_keys[set * _ways];
        for (unsigned w = 0; w < _ways; ++w)
            if (tags[w] == key)
                return static_cast<StorageSlot>(set * _ways + w);
        return kNoSlot;
    }

    /**
     * Pick a victim frame in @p set: an invalid way if one exists,
     * else the LRU valid way. Invalid slots hold recency 0 (live
     * stamps start at 1) and the scan keeps the first strict minimum,
     * so one pass realizes both preferences. Never returns kNoSlot.
     */
    StorageSlot
    victim(std::uint64_t set) const
    {
        const std::uint64_t *stamps = &_lru[set * _ways];
        unsigned best = 0;
        for (unsigned w = 1; w < _ways; ++w)
            if (stamps[w] < stamps[best])
                best = w;
        return static_cast<StorageSlot>(set * _ways + best);
    }

    /**
     * victim() fused with a duplicate check: one sweep of @p set that
     * both picks the victim (same policy as victim()) and panics if
     * @p line is already present. The fill path uses this instead of
     * a lookup-assert plus a second victim scan.
     */
    StorageSlot
    victimForInstall(std::uint64_t set, const OrientedLine &line) const
    {
        std::uint64_t key = packedKey(line);
        const std::uint64_t *tags = &_keys[set * _ways];
        const std::uint64_t *stamps = &_lru[set * _ways];
        unsigned best = 0;
        for (unsigned w = 0; w < _ways; ++w) {
            mda_assert(tags[w] != key,
                       "fill for an already-present line");
            if (stamps[w] < stamps[best])
                best = w;
        }
        return static_cast<StorageSlot>(set * _ways + best);
    }

    /**
     * One sweep of @p set collecting the crossing lines of @p tile:
     * returns a bit per tile-local index k whose line (@p cross, tile
     * << 3 | k) is resident, with the slots in @p slots. Because the
     * packed key is (tile << 4) | (index << 1) | orient, matching a
     * (tile, orientation) pair is one shift-compare per way — the
     * Fig. 9 duplicate probe as a mask intersection over the tag
     * array. Correct for any mapping whose crossing lines share the
     * set (Same-Set); Different-Set callers probe per word instead.
     */
    std::uint8_t
    crossingMask(std::uint64_t set, Orientation cross,
                 std::uint64_t tile,
                 std::array<StorageSlot, lineWords> &slots) const
    {
        std::uint64_t want = (tile << 4) |
                             (cross == Orientation::Col ? 1u : 0u);
        const std::uint64_t *tags = &_keys[set * _ways];
        std::uint8_t mask = 0;
        for (unsigned w = 0; w < _ways; ++w) {
            std::uint64_t key = tags[w];
            // Clear the index field; invalid keys keep their high
            // bits and can never equal a real (tile, orient) pattern.
            if ((key & ~std::uint64_t{0xe}) != want)
                continue;
            unsigned idx = static_cast<unsigned>((key >> 1) & 7);
            mask |= static_cast<std::uint8_t>(1u << idx);
            slots[idx] = static_cast<StorageSlot>(set * _ways + w);
        }
        return mask;
    }

    /** Update recency on @p slot. */
    void touch(StorageSlot slot) { _lru[slot] = ++_clock; }

    std::uint64_t lruStamp(StorageSlot slot) const
    {
        return _lru[slot];
    }

    /** Mark @p slot invalid and clean. */
    void
    invalidate(StorageSlot slot)
    {
        if (_keys[slot] != invalidKey) {
            OrientedLine old = line(slot);
            if (old.orient == Orientation::Col)
                --_validColLines;
            else
                --_validRowLines;
            --occSlot(old);
            if (_shadowEnabled)
                _shadow.erase(_keys[slot]);
        }
        _keys[slot] = invalidKey;
        _lru[slot] = 0;
        _dirty[slot] = 0;
    }

    /**
     * Install @p line into @p slot (which must be invalid).
     *
     * The recycled data block is NOT cleared: every installer (fill,
     * full-line write allocation) overwrites all 64 bytes immediately
     * after, so zeroing here would be pure overhead on the fill path.
     * A new caller that installs without writing the whole block must
     * clear it itself.
     */
    void
    install(StorageSlot slot, const OrientedLine &line)
    {
        mda_assert(_keys[slot] == invalidKey,
                   "installing over a valid entry");
        _keys[slot] = packedKey(line);
        _prefetched[slot] = 0;
        _dirty[slot] = 0;
        touch(slot);
        if (line.orient == Orientation::Col)
            ++_validColLines;
        else
            ++_validRowLines;
        ++occSlot(line);
        if (_shadowEnabled)
            _shadow[_keys[slot]] = slot;
    }

    // ---- per-slot metadata ----

    bool dirty(StorageSlot slot) const { return _dirty[slot] != 0; }
    std::uint8_t dirtyMask(StorageSlot slot) const
    {
        return _dirty[slot];
    }
    void setDirtyMask(StorageSlot slot, std::uint8_t mask)
    {
        _dirty[slot] = mask;
    }

    bool prefetched(StorageSlot slot) const
    {
        return _prefetched[slot] != 0;
    }
    void setPrefetched(StorageSlot slot, bool p)
    {
        _prefetched[slot] = p ? 1 : 0;
    }

    // ---- data plane ----

    std::uint8_t *data(StorageSlot slot) { return _data[slot].data(); }
    const std::uint8_t *data(StorageSlot slot) const
    {
        return _data[slot].data();
    }

    std::uint64_t
    word(StorageSlot slot, unsigned k) const
    {
        std::uint64_t v;
        std::memcpy(&v, _data[slot].data() + k * wordBytes, wordBytes);
        return v;
    }

    void
    setWord(StorageSlot slot, unsigned k, std::uint64_t v,
            bool mark_dirty)
    {
        std::memcpy(_data[slot].data() + k * wordBytes, &v, wordBytes);
        if (mark_dirty)
            _dirty[slot] |= static_cast<std::uint8_t>(1u << k);
    }

    /**
     * Whether any valid line of orientation @p o and tile @p tile may
     * be resident. Tiles alias into a fixed table, so `true` can be a
     * false positive (caller probes and finds nothing) but `false` is
     * exact — the basis for skipping crossing-line probe sweeps.
     */
    bool
    mayHoldTileLines(Orientation o, std::uint64_t tile) const
    {
        const auto &occ = _tileOcc[o == Orientation::Col];
        return occ[tile & (tileOccBuckets - 1)] != 0;
    }

    /** Currently valid column-oriented lines (Fig. 15 occupancy). */
    std::uint64_t validColLines() const { return _validColLines; }
    std::uint64_t validRowLines() const { return _validRowLines; }

    // ---- debug shadow map ----

    /**
     * Maintain an ordered key -> slot shadow map alongside the SoA
     * arrays (fuzz/debug only; not free). shadowViolations() then
     * cross-checks the two representations so any divergence —
     * a tag update that skipped the bookkeeping, a stale shadow
     * entry — surfaces as a named violation.
     */
    void
    enableShadow()
    {
        _shadowEnabled = true;
        _shadow.clear();
        for (StorageSlot s = 0;
             s < static_cast<StorageSlot>(_keys.size()); ++s)
            if (_keys[s] != invalidKey)
                _shadow[_keys[s]] = s;
    }

    bool shadowEnabled() const { return _shadowEnabled; }

    /** Divergence between the SoA tag array and the shadow map. */
    std::vector<std::string>
    shadowViolations() const
    {
        std::vector<std::string> violations;
        if (!_shadowEnabled)
            return violations;
        std::size_t live = 0;
        for (StorageSlot s = 0;
             s < static_cast<StorageSlot>(_keys.size()); ++s) {
            if (_keys[s] == invalidKey)
                continue;
            ++live;
            auto it = _shadow.find(_keys[s]);
            if (it == _shadow.end()) {
                violations.push_back(
                    "slot " + std::to_string(s) + " (key " +
                    std::to_string(_keys[s]) +
                    ") missing from the shadow map");
            } else if (it->second != s) {
                violations.push_back(
                    "key " + std::to_string(_keys[s]) +
                    " shadow-mapped to slot " +
                    std::to_string(it->second) + ", stored in slot " +
                    std::to_string(s));
            }
        }
        if (live != _shadow.size()) {
            violations.push_back(
                "shadow map holds " + std::to_string(_shadow.size()) +
                " keys, tag array holds " + std::to_string(live));
        }
        return violations;
    }

    // ---- test-only corruption hooks ----

    /** Mutable dirty mask (invariant-detection tests only). */
    std::uint8_t &testDirtyMask(StorageSlot slot)
    {
        return _dirty[slot];
    }

    /** Drop a frame WITHOUT bookkeeping (invariant-detection tests:
     *  occupancy counters and shadow map deliberately go stale). */
    void testCorruptInvalidate(StorageSlot slot)
    {
        _keys[slot] = invalidKey;
        _lru[slot] = 0;
    }

  private:
    static constexpr std::uint64_t invalidKey = ~std::uint64_t{0};

    /** Buckets in the per-orientation tile-occupancy tables. Power of
     *  two; exact per tile for matrices up to 2048x2048, aliased (and
     *  therefore conservative) beyond. */
    static constexpr std::size_t tileOccBuckets = std::size_t{1} << 16;

    std::uint32_t &
    occSlot(const OrientedLine &line)
    {
        return _tileOcc[line.orient == Orientation::Col]
                       [line.tile() & (tileOccBuckets - 1)];
    }

    std::uint64_t _sets;
    unsigned _ways;
    /** Packed (id, orientation) tags; invalidKey marks a free frame. */
    std::vector<std::uint64_t> _keys;
    /** Recency stamps; 0 on invalid frames, live stamps start at 1. */
    std::vector<std::uint64_t> _lru;
    std::vector<std::uint8_t> _dirty;
    std::vector<std::uint8_t> _prefetched;
    /** Data plane, parallel to the metadata arrays. */
    std::vector<std::array<std::uint8_t, lineBytes>> _data;
    /** Valid-line counts per (orientation, aliased tile); updated on
     *  install/invalidate only, so the counts are simulation state,
     *  never address-derived. */
    std::array<std::vector<std::uint32_t>, 2> _tileOcc;
    std::uint64_t _clock = 0;
    std::uint64_t _validColLines = 0;
    std::uint64_t _validRowLines = 0;
    /** std::map, not unordered_map: iterated by shadowViolations()
     *  into output (DET-2 ordered-iteration default). */
    std::map<std::uint64_t, StorageSlot> _shadow;
    bool _shadowEnabled = false;
};

/**
 * SoA set-associative array of sparse 512 B tile frames (the 2P2L
 * physically-2-D storage). Same layout discipline as LineStorage:
 * tile tags with an uncollidable invalid sentinel, recency stamps
 * doubling as the valid encoding, per-word presence/dirty masks and
 * the data plane in parallel vectors. Victim choice stays in
 * TileCache (it depends on MSHR fill pins).
 */
class TileStorage
{
  public:
    TileStorage(std::uint64_t num_sets, unsigned ways)
        : _sets(num_sets), _ways(ways),
          _tags(num_sets * ways, invalidTag),
          _lru(num_sets * ways, 0),
          _wordValid(num_sets * ways, 0),
          _wordDirty(num_sets * ways, 0),
          _data(num_sets * ways)
    {
        mda_assert(num_sets > 0 && ways > 0, "empty tile storage");
    }

    std::uint64_t numSets() const { return _sets; }
    unsigned ways() const { return _ways; }

    StorageSlot
    slotOf(std::uint64_t set, unsigned way) const
    {
        mda_assert(set < _sets && way < _ways, "frame out of range");
        return static_cast<StorageSlot>(set * _ways + way);
    }

    bool valid(StorageSlot slot) const
    {
        return _tags[slot] != invalidTag;
    }

    std::uint64_t tile(StorageSlot slot) const
    {
        mda_assert(_tags[slot] != invalidTag,
                   "tile() on an invalid slot");
        return _tags[slot];
    }

    /** Find the valid slot holding @p tile in @p set. */
    StorageSlot
    find(std::uint64_t set, std::uint64_t tile) const
    {
        mda_assert(tile != invalidTag, "tile id collides with sentinel");
        const std::uint64_t *tags = &_tags[set * _ways];
        for (unsigned w = 0; w < _ways; ++w)
            if (tags[w] == tile)
                return static_cast<StorageSlot>(set * _ways + w);
        return kNoSlot;
    }

    void touch(StorageSlot slot) { _lru[slot] = ++_clock; }
    std::uint64_t lruStamp(StorageSlot slot) const
    {
        return _lru[slot];
    }

    /** Claim @p slot (must be free) for @p tile: empty masks, zeroed
     *  data, recency touched. */
    void
    installFrame(StorageSlot slot, std::uint64_t tile)
    {
        mda_assert(_tags[slot] == invalidTag,
                   "installing over a valid frame");
        _tags[slot] = tile;
        _wordValid[slot] = 0;
        _wordDirty[slot] = 0;
        _data[slot].fill(0);
        touch(slot);
    }

    /** Release @p slot: masks cleared, tag freed. */
    void
    invalidate(StorageSlot slot)
    {
        _tags[slot] = invalidTag;
        _lru[slot] = 0;
        _wordValid[slot] = 0;
        _wordDirty[slot] = 0;
    }

    std::uint64_t wordValid(StorageSlot slot) const
    {
        return _wordValid[slot];
    }
    std::uint64_t wordDirty(StorageSlot slot) const
    {
        return _wordDirty[slot];
    }
    void orWordValid(StorageSlot slot, std::uint64_t mask)
    {
        _wordValid[slot] |= mask;
    }
    void orWordDirty(StorageSlot slot, std::uint64_t mask)
    {
        _wordDirty[slot] |= mask;
    }

    std::uint64_t
    word(StorageSlot slot, unsigned bit) const
    {
        std::uint64_t v;
        std::memcpy(&v, _data[slot].data() + bit * wordBytes,
                    wordBytes);
        return v;
    }

    void
    setWord(StorageSlot slot, unsigned bit, std::uint64_t v)
    {
        std::memcpy(_data[slot].data() + bit * wordBytes, &v,
                    wordBytes);
    }

    // ---- test-only corruption hooks ----

    std::uint64_t &testWordValid(StorageSlot slot)
    {
        return _wordValid[slot];
    }
    std::uint64_t &testWordDirty(StorageSlot slot)
    {
        return _wordDirty[slot];
    }

  private:
    static constexpr std::uint64_t invalidTag = ~std::uint64_t{0};

    std::uint64_t _sets;
    unsigned _ways;
    /** Tile-id tags; invalidTag marks a free frame. */
    std::vector<std::uint64_t> _tags;
    /** Recency stamps; 0 on invalid frames, live stamps start at 1. */
    std::vector<std::uint64_t> _lru;
    /** Bit (r*8 + c): word (r, c) of the tile is present. */
    std::vector<std::uint64_t> _wordValid;
    /** Bit (r*8 + c): word (r, c) is dirty. */
    std::vector<std::uint64_t> _wordDirty;
    std::vector<std::array<std::uint8_t, tileBytes>> _data;
    std::uint64_t _clock = 0;
};

} // namespace mda

#endif // MDA_CACHE_STORAGE_HH
