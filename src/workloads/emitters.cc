#include "emitters.hh"

#include <algorithm>
#include <vector>

#include "compiler/layout.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace mda::workloads
{

namespace
{

using compiler::TraceOp;

/**
 * CSR SpMV: y = A * x repeated over several iterations (a power-
 * iteration-style traversal), emitted directly.
 *
 * The matrix is (2n x 2n) with a fixed 16 nonzeros per row, so each
 * row's column indices and values occupy two aligned cache lines —
 * vectorizable streams — while the x gathers are scalar and reuse-
 * heavy: half the nonzeros land in a 64-column hot set (the column-
 * cluster reuse MDA-style caches target), half are uniform.
 *
 * The five arrays live in 1-D row-major layouts regardless of the
 * compile mode: CSR streams are one-dimensional, so there is no
 * column dimension to pad, and the trace is identical for MDA and
 * flat hierarchies (only the cache design point differs).
 */
class SpmvSource : public trace::TraceSource
{
  public:
    SpmvSource(const WorkloadParams &params,
               const compiler::CompileOptions &opts)
        : _dim(2 * params.n)
    {
        mda_assert(_dim >= hotCols, "spmv needs n >= 32");

        Addr base = opts.dataBase;
        auto place = [&base](std::int64_t words) {
            auto layout = std::make_unique<compiler::RowMajorLayout>(
                base, 1, words);
            base = alignUp(base + layout->footprintBytes(),
                           tileBytes);
            return layout;
        };
        _rowPtr = place(_dim + 1);
        _colIdx = place(_dim * nnzPerRow);
        _vals = place(_dim * nnzPerRow);
        _x = place(_dim);
        _y = place(_dim);

        // Column pattern: per-row seeded streams, sorted ascending
        // like a real CSR. Pure function of the workload seed.
        _cols.resize(static_cast<std::size_t>(_dim * nnzPerRow));
        for (std::int64_t row = 0; row < _dim; ++row) {
            Rng rng(Rng::streamSeed(params.seed,
                                    static_cast<std::uint64_t>(row)));
            auto *row_cols =
                &_cols[static_cast<std::size_t>(row * nnzPerRow)];
            for (int k = 0; k < nnzPerRow; ++k) {
                row_cols[k] = (k % 2 == 0)
                                  ? static_cast<std::int64_t>(
                                        rng.below(hotCols))
                                  : static_cast<std::int64_t>(
                                        rng.below(static_cast<
                                                  std::uint64_t>(
                                            _dim)));
            }
            std::sort(row_cols, row_cols + nnzPerRow);
        }
        _buffer.reserve(perRowOps);
    }

    bool
    next(TraceOp &op) override
    {
        if (_head == _buffer.size() && !refill())
            return false;
        op = _buffer[_head++];
        ++_emitted;
        return true;
    }

    void
    reset() override
    {
        _iter = 0;
        _row = 0;
        _buffer.clear();
        _head = 0;
        _emitted = 0;
    }

    std::uint64_t opsEmitted() const override { return _emitted; }

  private:
    static constexpr int nnzPerRow = 16;
    static constexpr int iterations = 8;
    static constexpr std::int64_t hotCols = 64;
    static constexpr std::size_t perRowOps =
        2 + 2 * (nnzPerRow / 8) + nnzPerRow + 1;

    void
    push(Addr addr, bool is_write, bool is_vector, std::uint32_t pc,
         std::uint32_t compute)
    {
        TraceOp op;
        op.addr = addr;
        op.orient = Orientation::Row;
        op.isWrite = is_write;
        op.isVector = is_vector;
        op.wordMask = is_vector ? 0xff : 0x01;
        op.pc = pc;
        op.computeCycles = compute;
        _buffer.push_back(op);
    }

    /** Emit one matrix row's worth of operations. */
    bool
    refill()
    {
        if (_iter == iterations)
            return false;
        _buffer.clear();
        _head = 0;

        std::int64_t r = _row;
        // rowPtr[r], rowPtr[r+1]: the extent lookup.
        push(_rowPtr->elementAddr(0, r), false, false, 0, 1);
        push(_rowPtr->elementAddr(0, r + 1), false, false, 0, 0);
        // Per 8-wide group: stream colIdx and vals lines, then
        // gather x[col] for each nonzero.
        for (int g = 0; g < nnzPerRow / 8; ++g) {
            std::int64_t first = r * nnzPerRow + 8 * g;
            push(_colIdx->elementAddr(0, first), false, true, 1, 0);
            push(_vals->elementAddr(0, first), false, true, 2, 2);
            for (int k = 0; k < 8; ++k) {
                std::int64_t col =
                    _cols[static_cast<std::size_t>(first + k)];
                push(_x->elementAddr(0, col), false, false, 3, 0);
            }
        }
        // y[r] accumulate.
        push(_y->elementAddr(0, r), true, false, 4, 1);

        if (++_row == _dim) {
            _row = 0;
            ++_iter;
        }
        return true;
    }

    std::int64_t _dim;
    std::unique_ptr<compiler::RowMajorLayout> _rowPtr, _colIdx, _vals,
        _x, _y;
    std::vector<std::int64_t> _cols;

    int _iter = 0;
    std::int64_t _row = 0;
    std::vector<TraceOp> _buffer;
    std::size_t _head = 0;
    std::uint64_t _emitted = 0;
};

} // namespace

bool
isEmitterWorkload(const std::string &name)
{
    return name == "spmv";
}

std::unique_ptr<trace::TraceSource>
makeEmitterSource(const std::string &name, const WorkloadParams &params,
                  const compiler::CompileOptions &opts)
{
    if (name == "spmv")
        return std::make_unique<SpmvSource>(params, opts);
    fatal("unknown emitter workload: %s", name.c_str());
}

} // namespace mda::workloads
