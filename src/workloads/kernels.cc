#include "kernels.hh"

#include <numeric>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "zipf.hh"

namespace mda::workloads
{

using compiler::AffineExpr;
using compiler::Kernel;
using compiler::KernelBuilder;
using compiler::StmtPhase;

Kernel
makeSgemm(const WorkloadParams &params)
{
    std::int64_t n = params.n;
    KernelBuilder b("sgemm");
    auto arr_a = b.array("A", n, n);
    auto arr_b = b.array("B", n, n);
    auto arr_c = b.array("C", n, n);
    auto nest = b.nest("mm");
    auto i = nest.loop("i", 0, n);
    auto j = nest.loop("j", 0, n);
    auto k = nest.loop("k", 0, n);
    // sum += A[i][k] * B[k][j]; A is row-traversed, B column-traversed.
    auto &body = nest.stmt(2);
    nest.read(body, arr_a, AffineExpr::var(i), AffineExpr::var(k));
    nest.read(body, arr_b, AffineExpr::var(k), AffineExpr::var(j));
    // C[i][j] = sum, once per (i, j).
    auto &store = nest.stmtAt(1, StmtPhase::Post, 1);
    nest.write(store, arr_c, AffineExpr::var(i), AffineExpr::var(j));
    return b.build();
}

Kernel
makeSsyr2k(const WorkloadParams &params)
{
    std::int64_t n = params.n;
    KernelBuilder b("ssyr2k");
    auto arr_a = b.array("A", n, n);
    auto arr_b = b.array("B", n, n);
    auto arr_c = b.array("C", n, n);

    // Nest 1: C *= beta (row traversal).
    auto scale = b.nest("scale");
    auto si = scale.loop("i", 0, n);
    auto sj = scale.loop("j", 0, n);
    auto &ss = scale.stmt(1);
    scale.read(ss, arr_c, AffineExpr::var(si), AffineExpr::var(sj));
    scale.write(ss, arr_c, AffineExpr::var(si), AffineExpr::var(sj));

    // Nest 2: C[i][j] += A[k][i]*B[k][j] + B[k][i]*A[k][j]
    // (the BLAS 'T' form: all four operand streams column-traversed).
    auto upd = b.nest("update");
    auto i = upd.loop("i", 0, n);
    auto j = upd.loop("j", 0, n);
    auto k = upd.loop("k", 0, n);
    auto &body = upd.stmt(4);
    upd.read(body, arr_a, AffineExpr::var(k), AffineExpr::var(i));
    upd.read(body, arr_b, AffineExpr::var(k), AffineExpr::var(j));
    upd.read(body, arr_b, AffineExpr::var(k), AffineExpr::var(i));
    upd.read(body, arr_a, AffineExpr::var(k), AffineExpr::var(j));
    auto &store = upd.stmtAt(1, StmtPhase::Post, 1);
    upd.read(store, arr_c, AffineExpr::var(i), AffineExpr::var(j));
    upd.write(store, arr_c, AffineExpr::var(i), AffineExpr::var(j));
    return b.build();
}

Kernel
makeSsyrk(const WorkloadParams &params)
{
    std::int64_t n = params.n;
    KernelBuilder b("ssyrk");
    auto arr_a = b.array("A", n, n);
    auto arr_c = b.array("C", n, n);

    // Nest 1: scale the lower triangle, row traversal.
    auto scale = b.nest("scale");
    auto si = scale.loop("i", 0, n);
    auto sj = scale.loop("j", 0, AffineExpr::var(si).plusConst(1));
    auto &ss = scale.stmt(1);
    scale.read(ss, arr_c, AffineExpr::var(si), AffineExpr::var(sj));
    scale.write(ss, arr_c, AffineExpr::var(si), AffineExpr::var(sj));

    // Nest 2: C[i][j] += A[k][i] * A[k][j], lower triangle; both
    // operand streams are column-traversed (A' * A).
    auto upd = b.nest("update");
    auto i = upd.loop("i", 0, n);
    auto j = upd.loop("j", 0, AffineExpr::var(i).plusConst(1));
    auto k = upd.loop("k", 0, n);
    auto &body = upd.stmt(2);
    upd.read(body, arr_a, AffineExpr::var(k), AffineExpr::var(i));
    upd.read(body, arr_a, AffineExpr::var(k), AffineExpr::var(j));
    auto &store = upd.stmtAt(1, StmtPhase::Post, 1);
    upd.read(store, arr_c, AffineExpr::var(i), AffineExpr::var(j));
    upd.write(store, arr_c, AffineExpr::var(i), AffineExpr::var(j));

    // Nest 3: symmetrize, C[j][i] = C[i][j] (mixed row read /
    // column write) — the trailing phase visible in Fig. 15.
    auto sym = b.nest("symmetrize");
    auto yi = sym.loop("i", 0, n);
    auto yj = sym.loop("j", 0, AffineExpr::var(yi));
    auto &sy = sym.stmt(1);
    sym.read(sy, arr_c, AffineExpr::var(yi), AffineExpr::var(yj));
    sym.write(sy, arr_c, AffineExpr::var(yj), AffineExpr::var(yi));
    return b.build();
}

Kernel
makeStrmm(const WorkloadParams &params)
{
    std::int64_t n = params.n;
    KernelBuilder b("strmm");
    auto arr_a = b.array("A", n, n); // lower triangular
    auto arr_b = b.array("B", n, n);
    auto arr_t = b.array("T", n, n); // result

    // T[i][j] = sum_{k<=i} A[i][k] * B[k][j]: A row-traversed along
    // the triangle, B column-traversed.
    auto nest = b.nest("trmm");
    auto i = nest.loop("i", 0, n);
    auto j = nest.loop("j", 0, n);
    auto k = nest.loop("k", 0, AffineExpr::var(i).plusConst(1));
    auto &body = nest.stmt(2);
    nest.read(body, arr_a, AffineExpr::var(i), AffineExpr::var(k));
    nest.read(body, arr_b, AffineExpr::var(k), AffineExpr::var(j));
    auto &store = nest.stmtAt(1, StmtPhase::Post, 1);
    nest.write(store, arr_t, AffineExpr::var(i), AffineExpr::var(j));
    return b.build();
}

Kernel
makeSobel(const WorkloadParams &params)
{
    std::int64_t n = params.n;
    KernelBuilder b("sobel");
    auto arr_in = b.array("in", n, n);
    auto arr_out = b.array("out", n, n);

    // Vertical traversal: the column loop is outer, rows innermost,
    // so every tap walks down a column.
    auto nest = b.nest("filter");
    auto j = nest.loop("j", 1, n - 1);
    auto i = nest.loop("i", 1, n - 1);
    auto &body = nest.stmt(10); // |Gx| + |Gy| arithmetic
    for (std::int64_t di = -1; di <= 1; ++di) {
        for (std::int64_t dj = -1; dj <= 1; ++dj) {
            if (di == 0 && dj == 0)
                continue; // the Sobel taps skip the center
            nest.read(body, arr_in,
                      AffineExpr::var(i).plusConst(di),
                      AffineExpr::var(j).plusConst(dj));
        }
    }
    nest.write(body, arr_out, AffineExpr::var(i), AffineExpr::var(j));
    return b.build();
}

namespace
{

/** Random values in [0, bound), deterministic per seed/salt. */
std::vector<std::int64_t>
randomValues(std::size_t count, std::int64_t bound, std::uint64_t seed,
             std::uint64_t salt)
{
    Rng rng(seed ^ (salt * 0x9e3779b97f4a7c15ULL));
    std::vector<std::int64_t> out;
    out.reserve(count);
    for (std::size_t n = 0; n < count; ++n)
        out.push_back(static_cast<std::int64_t>(
            rng.below(static_cast<std::uint64_t>(bound))));
    return out;
}

/** Shared HTAP shape: a (4n x n) table, @p scans column
 *  aggregations and @p txns random-row transactions. */
Kernel
makeHtap(const std::string &name, const WorkloadParams &params,
         std::size_t scans, std::size_t txns)
{
    std::int64_t rows = 4 * params.n;
    std::int64_t cols = params.n;
    KernelBuilder b(name);
    auto table = b.array("table", rows, cols);

    // Analytical queries: sum one random column per query; the row
    // loop is innermost, so each scan is a column stream. Half the
    // queries carry a data-dependent predicate (SELECT ... WHERE) the
    // vectorizer must reject, leaving scalar column walks that
    // exercise the 2-D MSHR's column-miss coalescing.
    if (scans > 0) {
        std::size_t plain = scans / 2;
        if (plain > 0) {
            auto scan = b.nest("scan");
            auto q = scan.loopOver(
                "q", randomValues(plain, cols, params.seed, 1));
            auto i = scan.loop("i", 0, rows);
            auto &body = scan.stmt(1);
            scan.read(body, table, AffineExpr::var(i),
                      AffineExpr::var(q));
        }
        std::size_t pred = scans - plain;
        if (pred > 0) {
            auto scan = b.nest("scan_pred");
            auto q = scan.loopOver(
                "q", randomValues(pred, cols, params.seed, 3));
            auto i = scan.loop("i", 0, rows);
            auto &body = scan.stmt(2);
            body.vectorizable = false;
            scan.read(body, table, AffineExpr::var(i),
                      AffineExpr::var(q));
        }
    }

    // Transactions: read a 16-field projection of a random row and
    // update the first 4 fields (row-direction accesses).
    if (txns > 0) {
        std::int64_t fields = std::min<std::int64_t>(16, cols);
        auto txn = b.nest("txn");
        auto t = txn.loopOver(
            "t", randomValues(txns, rows, params.seed, 2));
        auto f = txn.loop("f", 0, fields);
        auto &rd = txn.stmt(1);
        txn.read(rd, table, AffineExpr::var(t), AffineExpr::var(f));
        auto upd = b.nest("txn_update");
        auto t2 = upd.loopOver(
            "t2", randomValues(txns, rows, params.seed, 2));
        auto f2 = upd.loop("f2", 0, std::min<std::int64_t>(4, cols));
        auto &wr = upd.stmt(1);
        upd.read(wr, table, AffineExpr::var(t2), AffineExpr::var(f2));
        upd.write(wr, table, AffineExpr::var(t2), AffineExpr::var(f2));
    }
    return b.build();
}

/** Zipfian-hot random rows: rank-sampled, then scattered through the
 *  table by a seeded permutation so the hot keys land in unrelated
 *  rows — the access shape of a hashed KV store under YCSB skew. */
std::vector<std::int64_t>
zipfRows(std::size_t count, std::int64_t rows, std::uint64_t seed,
         std::uint64_t salt)
{
    Rng rng(Rng::streamSeed(seed, salt));
    std::vector<std::int64_t> perm(static_cast<std::size_t>(rows));
    std::iota(perm.begin(), perm.end(), std::int64_t{0});
    for (std::size_t i = perm.size() - 1; i > 0; --i) {
        std::size_t j = static_cast<std::size_t>(rng.below(i + 1));
        std::swap(perm[i], perm[j]);
    }
    ZipfSampler zipf(static_cast<std::size_t>(rows));
    std::vector<std::int64_t> out;
    out.reserve(count);
    for (std::size_t n = 0; n < count; ++n)
        out.push_back(perm[zipf(rng)]);
    return out;
}

} // namespace

Kernel
makeKv(const WorkloadParams &params)
{
    // YCSB-like get/put mix over a hash-table-shaped (4n x n) table:
    // zipfian-hot rows, gets read a 16-field projection (row-direction
    // streams that vectorize), puts read-modify-write the first 4
    // fields. An 80/20 get/put mix at 10n total requests.
    std::int64_t rows = 4 * params.n;
    std::int64_t cols = params.n;
    std::int64_t fields = std::min<std::int64_t>(16, cols);
    auto gets = static_cast<std::size_t>(8 * params.n);
    auto puts = static_cast<std::size_t>(2 * params.n);
    KernelBuilder b("kv");
    auto table = b.array("table", rows, cols);

    auto get = b.nest("get");
    auto g = get.loopOver(
        "g", zipfRows(gets, rows, params.seed, 11));
    auto f = get.loop("f", 0, fields);
    auto &rd = get.stmt(1);
    get.read(rd, table, AffineExpr::var(g), AffineExpr::var(f));

    auto put = b.nest("put");
    auto p = put.loopOver(
        "p", zipfRows(puts, rows, params.seed, 12));
    auto f2 = put.loop("f2", 0, std::min<std::int64_t>(4, cols));
    auto &wr = put.stmt(1);
    put.read(wr, table, AffineExpr::var(p), AffineExpr::var(f2));
    put.write(wr, table, AffineExpr::var(p), AffineExpr::var(f2));
    return b.build();
}

Kernel
makeStream(const WorkloadParams &params)
{
    // Streaming scan/aggregate over a (4n x n) table: a full
    // row-major scan with a per-row aggregate write (bandwidth-bound
    // row streams), then a group-by pass summing 8 random columns
    // (column streams — the MDA sweet spot).
    std::int64_t rows = 4 * params.n;
    std::int64_t cols = params.n;
    KernelBuilder b("stream");
    auto table = b.array("table", rows, cols);
    auto out = b.array("out", rows, 8);

    auto scan = b.nest("scan");
    auto i = scan.loop("i", 0, rows);
    auto j = scan.loop("j", 0, cols);
    auto &body = scan.stmt(1);
    scan.read(body, table, AffineExpr::var(i), AffineExpr::var(j));
    auto &agg = scan.stmtAt(0, StmtPhase::Post, 1);
    scan.write(agg, out, AffineExpr::var(i), AffineExpr(0));

    auto group = b.nest("group");
    auto c = group.loopOver(
        "c", randomValues(8, cols, params.seed, 21));
    auto r = group.loop("r", 0, rows);
    auto &sum = group.stmt(1);
    group.read(sum, table, AffineExpr::var(r), AffineExpr::var(c));
    return b.build();
}

Kernel
makeHtap1(const WorkloadParams &params)
{
    // Analytics-heavy: many scans, a modest transaction mix.
    auto scans = static_cast<std::size_t>(params.n / 4);
    auto txns = static_cast<std::size_t>(params.n);
    return makeHtap("htap1", params, scans, txns);
}

Kernel
makeHtap2(const WorkloadParams &params)
{
    // Transaction-heavy: a large transaction stream, a few scans.
    auto scans = static_cast<std::size_t>(params.n / 32);
    auto txns = static_cast<std::size_t>(8 * params.n);
    return makeHtap("htap2", params, scans, txns);
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names{
        "sgemm", "ssyr2k", "ssyrk", "strmm",
        "sobel", "htap1",  "htap2",
    };
    return names;
}

const std::vector<std::string> &
zooWorkloadNames()
{
    static const std::vector<std::string> names{
        "kv", "spmv", "stream",
    };
    return names;
}

Kernel
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "sgemm")
        return makeSgemm(params);
    if (name == "ssyr2k")
        return makeSsyr2k(params);
    if (name == "ssyrk")
        return makeSsyrk(params);
    if (name == "strmm")
        return makeStrmm(params);
    if (name == "sobel")
        return makeSobel(params);
    if (name == "htap1")
        return makeHtap1(params);
    if (name == "htap2")
        return makeHtap2(params);
    if (name == "kv")
        return makeKv(params);
    if (name == "stream")
        return makeStream(params);
    if (name == "spmv")
        fatal("spmv is a direct trace emitter, not an IR kernel; "
              "build it with workloads::makeEmitterSource");
    fatal("unknown workload: %s", name.c_str());
}

} // namespace mda::workloads
