/**
 * @file
 * Direct trace emitters: workloads whose access pattern is not
 * affine-expressible in the loop-nest IR.
 *
 * CSR SpMV is the canonical case — its ragged, data-dependent row
 * structure (rowPtr indirection, colIdx gathers) cannot be written as
 * affine subscripts. Emitter workloads synthesize their TraceOp
 * stream directly as a trace::TraceSource, using the same address
 * layouts and determinism rules (seeded Rng only) as compiled
 * kernels, so they capture, replay, and parallelize identically.
 */

#ifndef MDA_WORKLOADS_EMITTERS_HH
#define MDA_WORKLOADS_EMITTERS_HH

#include <memory>
#include <string>

#include "compiler/compile.hh"
#include "kernels.hh"
#include "trace/trace_source.hh"

namespace mda::workloads
{

/** True when @p name is a direct trace emitter (no loop-nest IR). */
bool isEmitterWorkload(const std::string &name);

/** Build the emitter's operation stream; fatal on unknown names. */
std::unique_ptr<trace::TraceSource>
makeEmitterSource(const std::string &name, const WorkloadParams &params,
                  const compiler::CompileOptions &opts);

} // namespace mda::workloads

#endif // MDA_WORKLOADS_EMITTERS_HH
