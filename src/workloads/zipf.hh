/**
 * @file
 * Deterministic zipfian sampling for the serving-shaped workloads.
 *
 * A precomputed CDF over ranks 0..n-1 with weight 1/(rank+1)^theta,
 * sampled by binary search over one Rng draw — a pure function of the
 * seed, so kv traces are identical across runs and --jobs values.
 * theta = 0.99 is the YCSB default skew.
 */

#ifndef MDA_WORKLOADS_ZIPF_HH
#define MDA_WORKLOADS_ZIPF_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace mda::workloads
{

/** Zipfian rank sampler: rank 0 is the hottest key. */
class ZipfSampler
{
  public:
    explicit ZipfSampler(std::size_t n, double theta = 0.99)
        : _cdf(n)
    {
        mda_assert(n > 0, "zipf over an empty universe");
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
            _cdf[i] = sum;
        }
        for (std::size_t i = 0; i < n; ++i)
            _cdf[i] /= sum;
    }

    /** Draw a rank in [0, n). */
    std::size_t
    operator()(Rng &rng) const
    {
        double u = rng.real();
        auto it = std::upper_bound(_cdf.begin(), _cdf.end(), u);
        if (it == _cdf.end())
            --it;
        return static_cast<std::size_t>(it - _cdf.begin());
    }

    std::size_t size() const { return _cdf.size(); }

  private:
    std::vector<double> _cdf;
};

} // namespace mda::workloads

#endif // MDA_WORKLOADS_ZIPF_HH
