/**
 * @file
 * The paper's benchmark kernels, expressed in the compiler IR.
 *
 * sgemm / ssyr2k / ssyrk / strmm are the LAPACK BLAS kernels from
 * Table I (transpose variants chosen so each kernel mixes row- and
 * column-traversed operands, as the paper's Fig. 10 access
 * distribution shows). sobel is the vertically-traversed Sobel filter;
 * htap1/htap2 are the analytical and transactional HTAP workloads
 * from GS-DRAM (column aggregations over a row-major table plus
 * random-row transactions).
 *
 * All elements are 64-bit words. Matrix inputs are n x n; HTAP tables
 * are (4n) x n, matching the paper's 2048 x 512 shape at n = 512.
 */

#ifndef MDA_WORKLOADS_KERNELS_HH
#define MDA_WORKLOADS_KERNELS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/ir.hh"

namespace mda::workloads
{

/** Parameters shared by all kernel builders. */
struct WorkloadParams
{
    /** Matrix dimension (HTAP tables are 4n rows x n columns). */
    std::int64_t n = 512;

    /** Seed for the HTAP random row/column selections. */
    std::uint64_t seed = 0xc0ffee;
};

/** C = A * B; A row-traversed, B column-traversed (paper Sec. V-A). */
compiler::Kernel makeSgemm(const WorkloadParams &params);

/** C = alpha*A'*B + alpha*B'*A + beta*C (transposed syr2k). */
compiler::Kernel makeSsyr2k(const WorkloadParams &params);

/** C = beta*C + A'*A on the lower triangle, then symmetrize. */
compiler::Kernel makeSsyrk(const WorkloadParams &params);

/** B = A * B with lower-triangular A (via a temporary). */
compiler::Kernel makeStrmm(const WorkloadParams &params);

/** 3x3 Sobel gradient magnitude with vertical traversal. */
compiler::Kernel makeSobel(const WorkloadParams &params);

/** HTAP, analytics-heavy: column aggregations + some transactions. */
compiler::Kernel makeHtap1(const WorkloadParams &params);

/** HTAP, transaction-heavy: random-row reads/updates + a few scans. */
compiler::Kernel makeHtap2(const WorkloadParams &params);

/** YCSB-like zipfian key-value get/put mix over a hashed table. */
compiler::Kernel makeKv(const WorkloadParams &params);

/** Streaming scan/aggregate plus a column group-by pass. */
compiler::Kernel makeStream(const WorkloadParams &params);

/** The paper's benchmark list, in its plotting order. */
const std::vector<std::string> &workloadNames();

/** The serving-shaped workload zoo (kv, spmv, stream); spmv is a
 *  direct trace emitter — see workloads/emitters.hh. */
const std::vector<std::string> &zooWorkloadNames();

/** Build a kernel by name; fatal on unknown names. */
compiler::Kernel makeWorkload(const std::string &name,
                              const WorkloadParams &params);

} // namespace mda::workloads

#endif // MDA_WORKLOADS_KERNELS_HH
