/**
 * @file
 * The compiler driver: analysis + transforms -> CompiledKernel.
 *
 * Compiling a kernel runs access-direction analysis, picks memory
 * layouts (the padding transform), plans vectorization, and assigns
 * array base addresses. The result is everything the trace generator
 * and the Fig. 10 access-mix analysis need.
 */

#ifndef MDA_COMPILER_COMPILE_HH
#define MDA_COMPILER_COMPILE_HH

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "direction.hh"
#include "ir.hh"
#include "layout.hh"
#include "vectorizer.hh"

namespace mda::compiler
{

/** Knobs for a compilation. */
struct CompileOptions
{
    /**
     * Target an MDA-capable hierarchy: annotate column preferences and
     * vectorize along columns. False compiles for the conventional
     * 1P1L baseline (all accesses row-marked, row-only vectorization).
     */
    bool mdaEnabled = true;

    /** Master vectorization enable (both modes vectorize rows). */
    bool vectorize = true;

    /**
     * Layout override for ablations. Default: Tiled2D when mdaEnabled,
     * RowMajor1D otherwise — the paper always pairs the layout with
     * the logical dimensionality of the hierarchy (Section IV-C).
     */
    std::optional<LayoutKind> layoutOverride;

    /** Base of the data segment (tile/page aligned). */
    Addr dataBase = 0x10000000;

    LayoutKind
    effectiveLayout() const
    {
        if (layoutOverride)
            return *layoutOverride;
        return mdaEnabled ? LayoutKind::Tiled2D : LayoutKind::RowMajor1D;
    }
};

/** A compiled kernel: IR + analysis results + placed layouts. */
struct CompiledKernel
{
    Kernel kernel;
    CompileOptions options;
    DirectionInfo directions;
    VectorPlan vplan;
    std::vector<std::unique_ptr<Layout>> layouts; ///< Per array id.

    /** Profile-guided annotation overrides (see compiler/profiler.hh)
     *  for references the static analysis left undiscerned. Consulted
     *  before the static preference; apply before constructing trace
     *  generators. */
    std::map<std::uint32_t, Orientation> annotationOverrides;

    const Layout &
    layoutOf(ArrayId id) const
    {
        mda_assert(id < layouts.size(), "array id out of range");
        return *layouts[id];
    }

    /** Orientation annotation carried by accesses of @p ref_id. */
    Orientation
    orientationOf(std::uint32_t ref_id) const
    {
        if (!options.mdaEnabled)
            return Orientation::Row;
        auto it = annotationOverrides.find(ref_id);
        if (it != annotationOverrides.end())
            return it->second;
        return directions.preference(ref_id);
    }

    /** Sum of all array footprints (the working-set size). */
    std::uint64_t footprintBytes() const;
};

/** Run the full compilation pipeline. */
CompiledKernel compileKernel(Kernel kernel, const CompileOptions &opts);

} // namespace mda::compiler

#endif // MDA_COMPILER_COMPILE_HH
