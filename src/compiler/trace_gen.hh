/**
 * @file
 * Streaming trace generation: walk a compiled kernel's iteration
 * space and emit annotated memory operations, one at a time.
 *
 * No trace is ever materialized; the generator advances an explicit
 * loop-nest state machine (handling affine/triangular bounds,
 * explicit-value loops, statements at any depth in Pre/Post phases,
 * and width-8 vector groups with scalar remainders) and produces ops
 * on demand. This is what makes 10^8-operation simulations practical.
 */

#ifndef MDA_COMPILER_TRACE_GEN_HH
#define MDA_COMPILER_TRACE_GEN_HH

#include <cstdint>
#include <vector>

#include "compile.hh"
#include "trace.hh"

namespace mda::compiler
{

/** Pull-interface generator over a compiled kernel's accesses. */
class TraceGenerator
{
  public:
    /** @param ck Compiled kernel; must outlive the generator. */
    explicit TraceGenerator(const CompiledKernel &ck);

    /**
     * Produce the next operation.
     * @return False when the kernel is exhausted (@p op untouched).
     */
    bool
    next(TraceOp &op)
    {
        if (_head == _buffer.size() && !refill())
            return false;
        op = _buffer[_head++];
        ++_emitted;
        return true;
    }

    /** Restart from the first operation. */
    void reset();

    /** Operations handed out so far. */
    std::uint64_t opsEmitted() const { return _emitted; }

  private:
    /** Pre-resolved, flat view of one reference (hot-path friendly). */
    struct RefPlan
    {
        const Layout *layout = nullptr;
        AffineExpr rowExpr, colExpr;
        Orientation orient = Orientation::Row;
        AccessDirection dir = AccessDirection::Invariant;
        bool isWrite = false;
        std::uint32_t pc = 0;
        /** Per-lane step of the moving subscript under the stmt's
         *  innermost loop (0 for invariant refs). */
        std::int64_t rowStep = 0, colStep = 0;
    };

    /** Pre-resolved view of one statement. */
    struct StmtPlan
    {
        std::vector<RefPlan> refs;
        unsigned depth = 0;
        StmtPhase phase = StmtPhase::Pre;
        unsigned computeCycles = 0;
        bool vectorized = false;
    };

    /** Pre-resolved view of one nest. */
    struct NestPlan
    {
        const LoopNest *nest = nullptr;
        /** Statements grouped: preAt[d]/postAt[d] = indexes into
         *  stmts for depth d, in program order. */
        std::vector<std::vector<unsigned>> preAt, postAt;
        std::vector<StmtPlan> stmts;
        /** Any innermost-depth statement vectorized (all-or-nothing
         *  per buildPlans, so this decides the whole inner body). */
        bool innerVectorized = false;
    };

    /** Walker position within the current nest. */
    enum class Phase : std::uint8_t
    {
        EnterLoop,
        BodyPre,
        BodyPost,
        Advance,
        ExitLoop,
        NestDone,
    };

    void buildPlans();
    bool refill();
    void emitStmt(const StmtPlan &stmt, unsigned width);
    void emitScalarRef(const RefPlan &ref);
    void emitVectorRef(const RefPlan &ref);
    void pushOp(TraceOp op);

    std::int64_t loopLower(const Loop &loop) const;
    std::int64_t loopUpper(const Loop &loop) const;

    const CompiledKernel &_ck;
    std::vector<NestPlan> _plans;

    // --- walker state ---
    std::size_t _nestIdx = 0;
    Phase _phase = Phase::EnterLoop;
    unsigned _depth = 0;
    std::vector<std::int64_t> _vals;      ///< By loop id.
    std::vector<std::int64_t> _hi;        ///< Upper bound per depth.
    std::vector<std::size_t> _valueIdx;   ///< Cursor for values loops.
    unsigned _lastWidth = 1;              ///< Width of last inner body.
    std::uint32_t _pendingCompute = 0;

    // --- output buffer ---
    std::vector<TraceOp> _buffer;
    std::size_t _head = 0;
    std::uint64_t _emitted = 0;
    bool _done = false;
};

} // namespace mda::compiler

#endif // MDA_COMPILER_TRACE_GEN_HH
