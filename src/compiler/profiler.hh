/**
 * @file
 * Profile-guided access-direction annotation (paper Section V):
 * "In cases where a data reference in the target code does not
 * exhibit a strong row or column preference that can be detected by
 * the compiler, we can employ profiling ... and then the
 * corresponding static load/store instructions can be annotated (with
 * access preference information) as suggested by the profiler."
 *
 * The profiler replays a kernel's (scalar) access stream and, for
 * each static reference, classifies consecutive dynamic accesses as
 * row-neighbouring (same logical row, nearby column) or
 * column-neighbouring. References whose static analysis said Mixed or
 * Invariant get the empirically dominant direction when the bias
 * clears a confidence threshold.
 */

#ifndef MDA_COMPILER_PROFILER_HH
#define MDA_COMPILER_PROFILER_HH

#include <cstdint>
#include <map>

#include "compile.hh"

namespace mda::compiler
{

/** Per-reference dynamic direction statistics. */
struct RefProfile
{
    std::uint64_t rowSteps = 0; ///< Next access moved along the row.
    std::uint64_t colSteps = 0; ///< Next access moved down the column.
    std::uint64_t farJumps = 0; ///< Neither (loop boundary, random).

    std::uint64_t total() const { return rowSteps + colSteps + farJumps; }

    /** Empirical preference, if the bias is strong enough. */
    Orientation
    preference(double threshold = 0.6) const
    {
        std::uint64_t steps = rowSteps + colSteps;
        if (steps == 0)
            return Orientation::Row;
        double col_bias = static_cast<double>(colSteps) /
                          static_cast<double>(steps);
        return col_bias >= threshold ? Orientation::Col
                                     : Orientation::Row;
    }
};

/** Profile of one kernel run. */
struct KernelProfile
{
    std::map<std::uint32_t, RefProfile> byRef;

    const RefProfile &
    of(std::uint32_t ref_id) const
    {
        static const RefProfile empty;
        auto it = byRef.find(ref_id);
        return it == byRef.end() ? empty : it->second;
    }
};

/**
 * Replay @p kernel's scalar access stream and collect per-reference
 * direction statistics. @p max_ops bounds profiling cost (sampling).
 */
KernelProfile profileKernel(const Kernel &kernel,
                            std::uint64_t max_ops = 1u << 22);

/**
 * Re-annotate a compiled kernel: references the static analysis left
 * without a discerned preference (Mixed) adopt the profiler's
 * suggestion when its bias clears @p threshold. Statically resolved
 * references are never overridden (the compiler knows best).
 *
 * @return Number of references whose annotation changed.
 */
unsigned applyProfile(CompiledKernel &ck, const KernelProfile &profile,
                      double threshold = 0.6);

} // namespace mda::compiler

#endif // MDA_COMPILER_PROFILER_HH
