#include "transforms.hh"

namespace mda::compiler
{

namespace
{

/** Rewrite v := lo + factor*strip(v) + point in place. */
void
substitute(AffineExpr &expr, LoopId var, std::int64_t lo,
           std::int64_t factor, LoopId point)
{
    std::int64_t coeff = expr.coeffOf(var);
    if (coeff == 0)
        return;
    // var keeps its id as the strip loop: scale its coefficient.
    expr.plusVar(var, coeff * (factor - 1)); // coeff -> coeff*factor
    expr.plusVar(point, coeff);
    expr.plusConst(coeff * lo);
}

} // namespace

LoopId
tileLoop(Kernel &kernel, std::size_t nest_idx, unsigned depth,
         unsigned sink_pos, std::int64_t factor)
{
    mda_assert(nest_idx < kernel.nests.size(), "bad nest index");
    LoopNest &nest = kernel.nests[nest_idx];
    mda_assert(depth < nest.loops.size(), "bad loop depth");
    mda_assert(sink_pos > depth && sink_pos <= nest.loops.size(),
               "sink position must be below the tiled loop");
    mda_assert(factor > 1, "tiling factor must exceed 1");

    Loop &loop = nest.loops[depth];
    if (loop.values)
        fatal("cannot tile a loop over explicit values");
    if (!loop.lower.terms().empty() || !loop.upper.terms().empty())
        fatal("cannot tile loop %s: non-constant bounds",
              loop.varName.c_str());
    std::int64_t lo = loop.lower.constant();
    std::int64_t hi = loop.upper.constant();
    std::int64_t trip = hi - lo;
    if (trip <= 0 || trip % factor != 0)
        fatal("cannot tile loop %s: trip %lld not divisible by %lld",
              loop.varName.c_str(), (long long)trip,
              (long long)factor);

    LoopId var = loop.id;
    for (const Loop &other : nest.loops) {
        if (other.id == var || other.values)
            continue;
        if (other.lower.uses(var) || other.upper.uses(var))
            fatal("cannot tile loop %s: loop %s bounds depend on it",
                  loop.varName.c_str(), other.varName.c_str());
    }

    // The original loop becomes the strip loop.
    loop.lower = AffineExpr(0);
    loop.upper = AffineExpr(trip / factor);

    // Build and insert the point loop.
    Loop point;
    point.id = kernel.loopCount++;
    point.varName = loop.varName + "'";
    point.lower = AffineExpr(0);
    point.upper = AffineExpr(factor);
    LoopId point_id = point.id;
    nest.loops.insert(nest.loops.begin() + sink_pos, std::move(point));

    // Rewrite subscripts and adjust statement depths.
    for (Stmt &stmt : nest.stmts) {
        bool uses = false;
        for (ArrayRef &ref : stmt.refs) {
            uses |= ref.rowExpr.uses(var) || ref.colExpr.uses(var);
            substitute(ref.rowExpr, var, lo, factor, point_id);
            substitute(ref.colExpr, var, lo, factor, point_id);
        }
        if (stmt.depth >= sink_pos) {
            ++stmt.depth; // a loop was inserted above it
        } else if (uses) {
            if (stmt.depth + 1 == sink_pos) {
                // Sink directly under the point loop; it now runs per
                // (strip, ..., point) — the same iteration set.
                stmt.depth = sink_pos;
            } else {
                fatal("cannot tile: statement at depth %u references "
                      "the tiled loop but is not adjacent to the sink "
                      "position %u",
                      stmt.depth, sink_pos);
            }
        }
    }

    kernel.validate();
    return point_id;
}

} // namespace mda::compiler
