#include "compile.hh"

namespace mda::compiler
{

std::uint64_t
CompiledKernel::footprintBytes() const
{
    std::uint64_t total = 0;
    for (const auto &layout : layouts)
        total += layout->footprintBytes();
    return total;
}

CompiledKernel
compileKernel(Kernel kernel, const CompileOptions &opts)
{
    kernel.validate();

    CompiledKernel ck;
    ck.options = opts;
    ck.directions = analyzeDirections(kernel);

    VectorizeOptions vopts;
    vopts.enable = opts.vectorize;
    // Column vectors need both an MDA-capable hierarchy and the
    // MDA-compliant layout; otherwise each "vector" would splinter
    // into per-word transfers.
    vopts.allowColumnVectors =
        opts.mdaEnabled && opts.effectiveLayout() == LayoutKind::Tiled2D;
    ck.vplan = planVectorization(kernel, vopts);

    // Place arrays back to back on page boundaries (the paper's OS
    // support guarantees column-contiguous allocation; a page-aligned
    // sequential placement models that).
    constexpr Addr page = 4096;
    Addr cursor = alignUp(opts.dataBase, page);
    LayoutKind kind = opts.effectiveLayout();
    for (const auto &arr : kernel.arrays) {
        auto layout = makeLayout(kind, cursor, arr.rows, arr.cols);
        cursor = alignUp(cursor + layout->footprintBytes(), page);
        ck.layouts.push_back(std::move(layout));
    }

    ck.kernel = std::move(kernel);
    return ck;
}

} // namespace mda::compiler
