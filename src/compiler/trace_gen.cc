#include "trace_gen.hh"

#include <algorithm>

namespace mda::compiler
{

TraceGenerator::TraceGenerator(const CompiledKernel &ck) : _ck(ck)
{
    buildPlans();
    reset();
}

void
TraceGenerator::buildPlans()
{
    const Kernel &k = _ck.kernel;
    _plans.clear();
    _plans.reserve(k.nests.size());

    std::size_t max_depth = 0;
    for (std::size_t n = 0; n < k.nests.size(); ++n) {
        const LoopNest &nest = k.nests[n];
        max_depth = std::max(max_depth, nest.loops.size());

        NestPlan plan;
        plan.nest = &nest;
        plan.preAt.resize(nest.loops.size());
        plan.postAt.resize(nest.loops.size());

        unsigned innermost_depth =
            static_cast<unsigned>(nest.loops.size()) - 1;
        bool all_inner_vectorized = true;
        bool any_inner = false;

        for (std::size_t s = 0; s < nest.stmts.size(); ++s) {
            const Stmt &stmt = nest.stmts[s];
            StmtPlan sp;
            sp.depth = stmt.depth;
            sp.phase = stmt.phase;
            sp.computeCycles = stmt.computeCycles;
            sp.vectorized = _ck.vplan.isVectorized(n, s);
            if (stmt.depth == innermost_depth) {
                any_inner = true;
                all_inner_vectorized &= sp.vectorized;
            }
            LoopId inner_lid = nest.loops[stmt.depth].id;
            for (const auto &ref : stmt.refs) {
                RefPlan rp;
                rp.layout = &_ck.layoutOf(ref.array);
                rp.rowExpr = ref.rowExpr;
                rp.colExpr = ref.colExpr;
                rp.orient = _ck.orientationOf(ref.refId);
                rp.dir = classifyRef(ref, inner_lid);
                rp.isWrite = ref.isWrite;
                rp.pc = ref.refId;
                rp.rowStep = ref.rowExpr.coeffOf(inner_lid);
                rp.colStep = ref.colExpr.coeffOf(inner_lid);
                sp.refs.push_back(std::move(rp));
            }
            auto &bucket = (stmt.phase == StmtPhase::Pre)
                               ? plan.preAt[stmt.depth]
                               : plan.postAt[stmt.depth];
            bucket.push_back(static_cast<unsigned>(plan.stmts.size()));
            plan.stmts.push_back(std::move(sp));
        }

        // The innermost loop steps by 8 only when every statement in
        // its body vectorizes; a mix would need unroll-and-jam.
        if (!(any_inner && all_inner_vectorized)) {
            for (auto &sp : plan.stmts)
                if (sp.depth == innermost_depth)
                    sp.vectorized = false;
        }
        plan.innerVectorized = any_inner && all_inner_vectorized;
        _plans.push_back(std::move(plan));
    }

    _vals.assign(k.loopCount, 0);
    _hi.assign(max_depth, 0);
    _valueIdx.assign(max_depth, 0);
}

void
TraceGenerator::reset()
{
    _nestIdx = 0;
    _phase = Phase::EnterLoop;
    _depth = 0;
    std::fill(_vals.begin(), _vals.end(), 0);
    std::fill(_hi.begin(), _hi.end(), 0);
    std::fill(_valueIdx.begin(), _valueIdx.end(), 0);
    _lastWidth = 1;
    _pendingCompute = 0;
    _buffer.clear();
    _head = 0;
    _emitted = 0;
    _done = _plans.empty();
}

std::int64_t
TraceGenerator::loopLower(const Loop &loop) const
{
    return loop.lower.eval(_vals);
}

std::int64_t
TraceGenerator::loopUpper(const Loop &loop) const
{
    return loop.upper.eval(_vals);
}

void
TraceGenerator::pushOp(TraceOp op)
{
    op.computeCycles = _pendingCompute;
    _pendingCompute = 0;
    _buffer.push_back(op);
}

void
TraceGenerator::emitScalarRef(const RefPlan &ref)
{
    std::int64_t r = ref.rowExpr.eval(_vals);
    std::int64_t c = ref.colExpr.eval(_vals);
    TraceOp op;
    op.addr = ref.layout->elementAddr(r, c);
    op.orient = ref.orient;
    op.isWrite = ref.isWrite;
    op.isVector = false;
    op.wordMask = 0x01;
    op.pc = ref.pc;
    pushOp(op);
}

void
TraceGenerator::emitVectorRef(const RefPlan &ref)
{
    // Eight lanes along the moving dimension; group the lane addresses
    // into the oriented lines they fall in (1 if aligned, 2 if the
    // group straddles a tile boundary) and emit one op per line.
    std::int64_t r = ref.rowExpr.eval(_vals);
    std::int64_t c = ref.colExpr.eval(_vals);
    bool col_moves = (ref.dir == AccessDirection::RowWise);

    // Fast path: when the first lane sits on word 0 and the last on
    // word 7 of the same oriented line, the group covers exactly that
    // line (within-tile addressing is linear in the moving subscript,
    // so the inner lanes cannot escape a line both ends sit in) and
    // the lane loop collapses to one full-mask op. This is the
    // aligned case every unit-stride inner loop hits.
    Addr first_addr = ref.layout->elementAddr(r, c);
    Addr last_addr =
        col_moves
            ? ref.layout->elementAddr(r, c + VectorPlan::width - 1)
            : ref.layout->elementAddr(r + VectorPlan::width - 1, c);
    OrientedLine first_line =
        OrientedLine::containing(first_addr, ref.orient);
    if (first_line.wordIndexOf(first_addr) == 0 &&
        OrientedLine::containing(last_addr, ref.orient) ==
            first_line &&
        first_line.wordIndexOf(last_addr) == VectorPlan::width - 1) {
        TraceOp op;
        op.addr = first_line.baseAddr();
        op.orient = ref.orient;
        op.isWrite = ref.isWrite;
        op.isVector = true;
        op.wordMask = 0xff;
        op.pc = ref.pc;
        pushOp(op);
        return;
    }

    OrientedLine cur_line;
    std::uint8_t mask = 0;
    bool have_line = false;
    for (unsigned lane = 0; lane < VectorPlan::width; ++lane) {
        Addr a = col_moves
                     ? ref.layout->elementAddr(r, c + lane)
                     : ref.layout->elementAddr(r + lane, c);
        OrientedLine line = OrientedLine::containing(a, ref.orient);
        if (!have_line || !(line == cur_line)) {
            if (have_line) {
                TraceOp op;
                op.addr = cur_line.baseAddr();
                op.orient = ref.orient;
                op.isWrite = ref.isWrite;
                op.isVector = true;
                op.wordMask = mask;
                op.pc = ref.pc;
                pushOp(op);
            }
            cur_line = line;
            mask = 0;
            have_line = true;
        }
        mask |= static_cast<std::uint8_t>(1u << line.wordIndexOf(a));
    }
    if (have_line) {
        TraceOp op;
        op.addr = cur_line.baseAddr();
        op.orient = ref.orient;
        op.isWrite = ref.isWrite;
        op.isVector = true;
        op.wordMask = mask;
        op.pc = ref.pc;
        pushOp(op);
    }
}

void
TraceGenerator::emitStmt(const StmtPlan &stmt, unsigned width)
{
    _pendingCompute += stmt.computeCycles;
    for (const auto &ref : stmt.refs) {
        bool moving = (ref.dir == AccessDirection::RowWise ||
                       ref.dir == AccessDirection::ColWise);
        if (width == VectorPlan::width && moving)
            emitVectorRef(ref);
        else
            emitScalarRef(ref);
    }
}

bool
TraceGenerator::refill()
{
    if (_done)
        return false;
    _buffer.clear();
    _head = 0;

    while (_buffer.empty() && !_done) {
        const NestPlan &plan = _plans[_nestIdx];
        const LoopNest &nest = *plan.nest;
        unsigned inner = static_cast<unsigned>(nest.loops.size()) - 1;

        switch (_phase) {
          case Phase::EnterLoop: {
            const Loop &loop = nest.loops[_depth];
            if (loop.values) {
                if (loop.values->empty()) {
                    _phase = Phase::ExitLoop;
                    break;
                }
                _valueIdx[_depth] = 0;
                _vals[loop.id] = (*loop.values)[0];
                _hi[_depth] =
                    static_cast<std::int64_t>(loop.values->size());
            } else {
                std::int64_t lo = loopLower(loop);
                std::int64_t hi = loopUpper(loop);
                if (lo >= hi) {
                    _phase = Phase::ExitLoop;
                    break;
                }
                _vals[loop.id] = lo;
                _hi[_depth] = hi;
            }
            _phase = Phase::BodyPre;
            break;
          }

          case Phase::BodyPre: {
            unsigned width = 1;
            if (_depth == inner) {
                const Loop &loop = nest.loops[_depth];
                bool can_vec = !loop.values &&
                               _vals[loop.id] + VectorPlan::width <=
                                   _hi[_depth];
                width = (plan.innerVectorized && can_vec)
                            ? VectorPlan::width
                            : 1;
                _lastWidth = width;
            }
            for (unsigned idx : plan.preAt[_depth])
                emitStmt(plan.stmts[idx], width);
            if (_depth < inner) {
                ++_depth;
                _phase = Phase::EnterLoop;
            } else {
                _phase = Phase::BodyPost;
            }
            break;
          }

          case Phase::BodyPost: {
            unsigned width = (_depth == inner) ? _lastWidth : 1;
            for (unsigned idx : plan.postAt[_depth])
                emitStmt(plan.stmts[idx], width);
            _phase = Phase::Advance;
            break;
          }

          case Phase::Advance: {
            const Loop &loop = nest.loops[_depth];
            if (loop.values) {
                ++_valueIdx[_depth];
                if (static_cast<std::int64_t>(_valueIdx[_depth]) <
                    _hi[_depth]) {
                    _vals[loop.id] = (*loop.values)[_valueIdx[_depth]];
                    _phase = Phase::BodyPre;
                } else {
                    _phase = Phase::ExitLoop;
                }
            } else {
                std::int64_t step =
                    (_depth == inner) ? _lastWidth : 1;
                _vals[loop.id] += step;
                if (_vals[loop.id] < _hi[_depth])
                    _phase = Phase::BodyPre;
                else
                    _phase = Phase::ExitLoop;
            }
            break;
          }

          case Phase::ExitLoop: {
            if (_depth == 0) {
                _phase = Phase::NestDone;
            } else {
                --_depth;
                _phase = Phase::BodyPost;
            }
            break;
          }

          case Phase::NestDone: {
            ++_nestIdx;
            if (_nestIdx >= _plans.size()) {
                _done = true;
            } else {
                _depth = 0;
                _phase = Phase::EnterLoop;
            }
            break;
          }
        }
    }
    return !_buffer.empty();
}

} // namespace mda::compiler
