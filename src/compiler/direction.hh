/**
 * @file
 * Access-direction analysis (paper Section V).
 *
 * For every array reference, determine whether the innermost enclosing
 * loop traverses the array along rows (innermost index appears only in
 * the column subscript — the fastest-changing dimension of a row-major
 * array), along columns (only in the row subscript), is invariant, or
 * mixes both (diagonal walks). Row-wise and undiscerned accesses are
 * annotated with row preference; column-wise accesses with column
 * preference — the annotation the ISA carries on each load/store.
 */

#ifndef MDA_COMPILER_DIRECTION_HH
#define MDA_COMPILER_DIRECTION_HH

#include <cstdint>
#include <map>

#include "ir.hh"
#include "sim/orientation.hh"

namespace mda::compiler
{

/** The analysis verdict for one reference. */
enum class AccessDirection : std::uint8_t
{
    RowWise,    ///< Moves along a row (unit-ish stride).
    ColWise,    ///< Moves down a column (row-pitch stride).
    Invariant,  ///< Does not move with the innermost loop.
    Mixed,      ///< Innermost index in both subscripts (diagonal).
};

/** Printable name. */
constexpr const char *
directionName(AccessDirection d)
{
    switch (d) {
      case AccessDirection::RowWise: return "row";
      case AccessDirection::ColWise: return "col";
      case AccessDirection::Invariant: return "invariant";
      case AccessDirection::Mixed: return "mixed";
    }
    return "?";
}

/** Orientation preference conveyed to hardware for a verdict:
 *  only column-wise accesses get column preference (paper: accesses
 *  without discerned preference are marked row). */
constexpr Orientation
preferenceOf(AccessDirection d)
{
    return d == AccessDirection::ColWise ? Orientation::Col
                                         : Orientation::Row;
}

/**
 * The innermost loop that actually varies for a statement: the deepest
 * enclosing loop (statements above the innermost loop are analyzed
 * with respect to the deepest loop that encloses *them*).
 */
inline LoopId
innermostFor(const LoopNest &nest, const Stmt &stmt)
{
    return nest.loops[stmt.depth].id;
}

/** Classify one reference with respect to enclosing loop @p innermost. */
inline AccessDirection
classifyRef(const ArrayRef &ref, LoopId innermost)
{
    bool in_row = ref.rowExpr.uses(innermost);
    bool in_col = ref.colExpr.uses(innermost);
    if (in_row && in_col)
        return AccessDirection::Mixed;
    if (in_row)
        return AccessDirection::ColWise;
    if (in_col)
        return AccessDirection::RowWise;
    return AccessDirection::Invariant;
}

/** Per-kernel analysis result, keyed by static reference id. */
struct DirectionInfo
{
    std::map<std::uint32_t, AccessDirection> byRef;

    AccessDirection
    of(std::uint32_t ref_id) const
    {
        auto it = byRef.find(ref_id);
        mda_assert(it != byRef.end(), "unknown ref id %u", ref_id);
        return it->second;
    }

    Orientation
    preference(std::uint32_t ref_id) const
    {
        return preferenceOf(of(ref_id));
    }
};

/** Run the analysis over a whole kernel. */
inline DirectionInfo
analyzeDirections(const Kernel &kernel)
{
    DirectionInfo info;
    for (const auto &nest : kernel.nests) {
        for (const auto &stmt : nest.stmts) {
            LoopId innermost = innermostFor(nest, stmt);
            for (const auto &ref : stmt.refs)
                info.byRef[ref.refId] = classifyRef(ref, innermost);
        }
    }
    return info;
}

} // namespace mda::compiler

#endif // MDA_COMPILER_DIRECTION_HH
