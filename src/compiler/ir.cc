#include "ir.hh"

#include <set>
#include <sstream>

namespace mda::compiler
{

std::string
AffineExpr::str() const
{
    std::ostringstream os;
    bool first = true;
    for (const auto &t : _terms) {
        if (!first)
            os << (t.second >= 0 ? " + " : " - ");
        else if (t.second < 0)
            os << "-";
        std::int64_t mag = t.second < 0 ? -t.second : t.second;
        if (mag != 1)
            os << mag << "*";
        os << "L" << t.first;
        first = false;
    }
    if (_constant != 0 || first) {
        if (!first)
            os << (_constant >= 0 ? " + " : " - ");
        std::int64_t mag = _constant < 0 ? -_constant : _constant;
        os << (first ? _constant : mag);
    }
    return os.str();
}

void
Kernel::validate() const
{
    std::set<LoopId> seen_loops;
    std::set<std::uint32_t> seen_refs;
    for (const auto &arr : arrays) {
        if (arr.rows <= 0 || arr.cols <= 0)
            fatal("array %s has non-positive dimensions",
                  arr.name.c_str());
    }
    for (const auto &nest : nests) {
        if (nest.loops.empty())
            fatal("nest %s has no loops", nest.name.c_str());
        if (nest.stmts.empty())
            fatal("nest %s has no statements", nest.name.c_str());
        for (const auto &loop : nest.loops) {
            if (!seen_loops.insert(loop.id).second)
                fatal("loop id %u reused across nests", loop.id);
            if (loop.id >= loopCount)
                fatal("loop id %u exceeds loopCount %u", loop.id,
                      loopCount);
        }
        // Bounds may only reference outer loops of the same nest.
        for (std::size_t d = 0; d < nest.loops.size(); ++d) {
            const Loop &loop = nest.loops[d];
            if (loop.values)
                continue;
            for (const AffineExpr *e : {&loop.lower, &loop.upper}) {
                for (const auto &t : e->terms()) {
                    bool outer = false;
                    for (std::size_t o = 0; o < d; ++o)
                        outer |= (nest.loops[o].id == t.first);
                    if (!outer) {
                        fatal("loop %s bound uses non-outer loop L%u",
                              loop.varName.c_str(), t.first);
                    }
                }
            }
        }
        for (const auto &stmt : nest.stmts) {
            if (stmt.depth >= nest.loops.size())
                fatal("stmt depth %u too deep in nest %s", stmt.depth,
                      nest.name.c_str());
            for (const auto &ref : stmt.refs) {
                if (ref.array >= arrays.size())
                    fatal("ref to undeclared array %u", ref.array);
                if (!seen_refs.insert(ref.refId).second)
                    fatal("duplicate ref id %u", ref.refId);
                // Subscripts may only use loops of this nest that
                // enclose the statement.
                for (const AffineExpr *e : {&ref.rowExpr, &ref.colExpr}) {
                    for (const auto &t : e->terms()) {
                        bool enclosing = false;
                        for (std::size_t d = 0; d <= stmt.depth; ++d)
                            enclosing |= (nest.loops[d].id == t.first);
                        if (!enclosing) {
                            fatal("ref in %s uses loop L%u that does "
                                  "not enclose it",
                                  nest.name.c_str(), t.first);
                        }
                    }
                }
            }
        }
    }
}

} // namespace mda::compiler
