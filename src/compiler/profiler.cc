#include "profiler.hh"

#include <unordered_map>

#include "trace_gen.hh"

namespace mda::compiler
{

KernelProfile
profileKernel(const Kernel &kernel, std::uint64_t max_ops)
{
    // Profile on a scalar, row-major compilation: logical movement is
    // recoverable from address deltas via each array's row pitch.
    Kernel copy = kernel;
    CompileOptions opts;
    opts.mdaEnabled = false;
    opts.vectorize = false;
    CompiledKernel ck = compileKernel(std::move(copy), opts);

    // Per-reference row pitch (bytes between vertically adjacent
    // elements) from the profiling layout.
    // MDA_LINT_ALLOW(DET-2): keyed lookup by refId only, never
    // iterated; the profile is keyed independently below.
    std::unordered_map<std::uint32_t, Addr> pitch_of;
    for (const auto &nest : ck.kernel.nests) {
        for (const auto &stmt : nest.stmts) {
            for (const auto &ref : stmt.refs) {
                const auto *layout = static_cast<const RowMajorLayout *>(
                    &ck.layoutOf(ref.array));
                pitch_of[ref.refId] = layout->pitch();
            }
        }
    }

    KernelProfile profile;
    // MDA_LINT_ALLOW(DET-2): keyed emplace/lookup by pc only, never
    // iterated.
    std::unordered_map<std::uint32_t, Addr> last_addr;
    TraceGenerator gen(ck);
    TraceOp op;
    std::uint64_t ops = 0;
    while (ops < max_ops && gen.next(op)) {
        ++ops;
        auto [it, fresh] = last_addr.emplace(op.pc, op.addr);
        if (fresh)
            continue;
        std::int64_t delta = static_cast<std::int64_t>(op.addr) -
                             static_cast<std::int64_t>(it->second);
        it->second = op.addr;
        if (delta == 0)
            continue;
        RefProfile &rp = profile.byRef[op.pc];
        auto pitch = static_cast<std::int64_t>(pitch_of[op.pc]);
        std::int64_t mag = delta < 0 ? -delta : delta;
        if (mag < pitch) {
            ++rp.rowSteps; // moved within the row
        } else if (mag % pitch == 0 && mag / pitch <= 2) {
            ++rp.colSteps; // moved a row or two straight down
        } else {
            ++rp.farJumps; // loop boundary / random reposition
        }
    }
    return profile;
}

unsigned
applyProfile(CompiledKernel &ck, const KernelProfile &profile,
             double threshold)
{
    if (!ck.options.mdaEnabled)
        return 0; // the baseline ISA has no column annotations
    unsigned changed = 0;
    for (const auto &nest : ck.kernel.nests) {
        for (const auto &stmt : nest.stmts) {
            for (const auto &ref : stmt.refs) {
                AccessDirection dir = ck.directions.of(ref.refId);
                if (dir != AccessDirection::Mixed &&
                    dir != AccessDirection::Invariant)
                    continue; // statically resolved
                const RefProfile &rp = profile.of(ref.refId);
                if (rp.total() == 0)
                    continue;
                Orientation suggested = rp.preference(threshold);
                if (suggested != ck.orientationOf(ref.refId)) {
                    ck.annotationOverrides[ref.refId] = suggested;
                    ++changed;
                }
            }
        }
    }
    return changed;
}

} // namespace mda::compiler
