/**
 * @file
 * The annotated memory-operation stream a compiled kernel executes.
 */

#ifndef MDA_COMPILER_TRACE_HH
#define MDA_COMPILER_TRACE_HH

#include <cstdint>

#include "sim/orientation.hh"
#include "sim/types.hh"

namespace mda::compiler
{

/**
 * One dynamic memory operation. Scalars carry the word address;
 * vector ops carry the base address of the oriented line they touch
 * plus a mask of the covered words (an unaligned SIMD access is split
 * by the generator into one op per line touched).
 */
struct TraceOp
{
    Addr addr = invalidAddr;
    Orientation orient = Orientation::Row;
    bool isWrite = false;
    bool isVector = false;

    /** For vector ops: which words of the line are accessed. */
    std::uint8_t wordMask = 0x01;

    /** Static reference id (prefetcher training key). */
    std::uint32_t pc = 0;

    /** Non-memory cycles the CPU stalls before issuing this op. */
    std::uint32_t computeCycles = 0;

    /** Bytes of data moved by this op. */
    unsigned
    bytes() const
    {
        if (!isVector)
            return wordBytes;
        return static_cast<unsigned>(__builtin_popcount(wordMask)) *
               wordBytes;
    }
};

} // namespace mda::compiler

#endif // MDA_COMPILER_TRACE_HH
