/**
 * @file
 * Affine loop-nest intermediate representation.
 *
 * Workload kernels are expressed as sequences of loop nests over 2-D
 * arrays with affine subscripts — exactly the program class the paper's
 * compiler support (Section V) targets. The compiler analyses this IR
 * to extract access-direction preferences, applies the MDA-compliant
 * layout transform, vectorizes along rows *and* columns, and emits the
 * annotated memory-access stream the simulated hardware consumes.
 */

#ifndef MDA_COMPILER_IR_HH
#define MDA_COMPILER_IR_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace mda::compiler
{

/** Identifies a loop within a kernel (assigned by the builder). */
using LoopId = unsigned;

/** Identifies an array within a kernel. */
using ArrayId = unsigned;

/**
 * A linear expression c0 + sum(ci * loop_i) over loop variables.
 * Subscripts and loop bounds are affine expressions.
 */
class AffineExpr
{
  public:
    AffineExpr() = default;

    /** Constant expression. */
    /* implicit */ AffineExpr(std::int64_t c) : _constant(c) {}

    /** The expression "var" (coefficient 1 on @p loop). */
    static AffineExpr
    var(LoopId loop)
    {
        AffineExpr e;
        e._terms.emplace_back(loop, 1);
        return e;
    }

    /** Add @p coeff * loop to this expression. */
    AffineExpr &
    plusVar(LoopId loop, std::int64_t coeff)
    {
        if (coeff == 0)
            return *this;
        for (auto &t : _terms) {
            if (t.first == loop) {
                t.second += coeff;
                if (t.second == 0)
                    removeVar(loop);
                return *this;
            }
        }
        _terms.emplace_back(loop, coeff);
        return *this;
    }

    /** Add a constant. */
    AffineExpr &
    plusConst(std::int64_t c)
    {
        _constant += c;
        return *this;
    }

    /** Coefficient of @p loop (0 if absent). */
    std::int64_t
    coeffOf(LoopId loop) const
    {
        for (const auto &t : _terms)
            if (t.first == loop)
                return t.second;
        return 0;
    }

    /** Whether @p loop appears with non-zero coefficient. */
    bool uses(LoopId loop) const { return coeffOf(loop) != 0; }

    std::int64_t constant() const { return _constant; }
    const std::vector<std::pair<LoopId, std::int64_t>> &terms() const
    {
        return _terms;
    }

    /**
     * Evaluate with loop values supplied by index: vals[loop id].
     * Loop ids must be dense (assigned by KernelBuilder).
     */
    std::int64_t
    eval(const std::vector<std::int64_t> &vals) const
    {
        std::int64_t v = _constant;
        for (const auto &t : _terms) {
            mda_assert(t.first < vals.size(), "loop id out of range");
            v += t.second * vals[t.first];
        }
        return v;
    }

    /** Render as a human-readable string, e.g. "i + 2*k - 1". */
    std::string str() const;

  private:
    void
    removeVar(LoopId loop)
    {
        std::erase_if(_terms,
                      [loop](const auto &t) { return t.first == loop; });
    }

    std::int64_t _constant = 0;
    std::vector<std::pair<LoopId, std::int64_t>> _terms;
};

/** A 2-D array of 64-bit elements. */
struct ArrayDecl
{
    ArrayId id = 0;
    std::string name;
    std::int64_t rows = 0;
    std::int64_t cols = 0;
};

/** One subscripted array access within a statement. */
struct ArrayRef
{
    ArrayId array = 0;
    AffineExpr rowExpr;
    AffineExpr colExpr;
    bool isWrite = false;

    /** Static-instruction id; unique across the kernel, assigned at
     *  build time, used as the prefetcher-training PC. */
    std::uint32_t refId = 0;
};

/** Where a statement sits relative to deeper loops at its depth. */
enum class StmtPhase : std::uint8_t
{
    Pre,   ///< Executes before the next-deeper loop each iteration.
    Post,  ///< Executes after the next-deeper loop completes.
};

/**
 * A straight-line statement: an ordered list of array references plus
 * an estimate of the non-memory work (ALU cycles) per execution.
 */
struct Stmt
{
    std::vector<ArrayRef> refs;

    /** Depth d: the statement lives directly in the body of loops[d]. */
    unsigned depth = 0;

    StmtPhase phase = StmtPhase::Pre;

    /** Non-memory cycles charged once per (possibly SIMD) execution. */
    unsigned computeCycles = 1;

    /** False models bodies the vectorizer must reject regardless of
     *  subscripts (data-dependent predicates, calls, ...). */
    bool vectorizable = true;
};

/** One loop of a nest. */
struct Loop
{
    LoopId id = 0;
    std::string varName;

    /** Half-open bounds [lower, upper); affine in *outer* loop vars. */
    AffineExpr lower;
    AffineExpr upper;

    /**
     * Explicit iteration values (e.g. randomly chosen transaction rows
     * in the HTAP workloads). When set, bounds are ignored and the
     * loop is never vectorized along.
     */
    std::optional<std::vector<std::int64_t>> values;
};

/** A perfect-or-imperfect loop nest with statements at any depth. */
struct LoopNest
{
    std::string name;
    std::vector<Loop> loops;   ///< Outermost first.

    /** Deque: statements keep stable addresses while the builder
     *  appends more (the fluent API hands out references). */
    std::deque<Stmt> stmts;

    const Loop &innermost() const { return loops.back(); }
};

/** A whole kernel: arrays plus an ordered sequence of loop nests. */
struct Kernel
{
    std::string name;
    std::vector<ArrayDecl> arrays;

    /** Deque: nests keep stable addresses across builder appends. */
    std::deque<LoopNest> nests;

    /** Total distinct loops (ids are dense in [0, loopCount)). */
    unsigned loopCount = 0;

    const ArrayDecl &
    array(ArrayId id) const
    {
        mda_assert(id < arrays.size(), "array id out of range");
        return arrays[id];
    }

    /** Validate structural invariants; fatal on violation. */
    void validate() const;
};

/**
 * Fluent builder assigning dense loop ids and unique ref ids.
 *
 * Usage:
 * @code
 *   KernelBuilder b("sgemm");
 *   auto A = b.array("A", n, n);
 *   auto nest = b.nest("mm");
 *   auto i = nest.loop("i", 0, n);
 *   ...
 * @endcode
 */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name) { _kernel.name = std::move(name); }

    /** Declare a rows x cols array of 64-bit words. */
    ArrayId
    array(std::string name, std::int64_t rows, std::int64_t cols)
    {
        ArrayDecl decl;
        decl.id = static_cast<ArrayId>(_kernel.arrays.size());
        decl.name = std::move(name);
        decl.rows = rows;
        decl.cols = cols;
        _kernel.arrays.push_back(std::move(decl));
        return _kernel.arrays.back().id;
    }

    /** Scoped builder for one loop nest. */
    class NestBuilder
    {
      public:
        /** Add a loop with affine half-open bounds [lo, hi). */
        LoopId
        loop(std::string var, AffineExpr lo, AffineExpr hi)
        {
            Loop l;
            l.id = _parent->_kernel.loopCount++;
            l.varName = std::move(var);
            l.lower = std::move(lo);
            l.upper = std::move(hi);
            _nest->loops.push_back(std::move(l));
            return _nest->loops.back().id;
        }

        /** Add a loop iterating over explicit values. */
        LoopId
        loopOver(std::string var, std::vector<std::int64_t> values)
        {
            Loop l;
            l.id = _parent->_kernel.loopCount++;
            l.varName = std::move(var);
            l.values = std::move(values);
            _nest->loops.push_back(std::move(l));
            return _nest->loops.back().id;
        }

        /** Add a statement at the innermost depth (Pre phase). */
        Stmt &
        stmt(unsigned compute_cycles = 1)
        {
            return stmtAt(static_cast<unsigned>(_nest->loops.size()) - 1,
                          StmtPhase::Pre, compute_cycles);
        }

        /** Add a statement at an explicit depth/phase. */
        Stmt &
        stmtAt(unsigned depth, StmtPhase phase,
               unsigned compute_cycles = 1)
        {
            mda_assert(depth < _nest->loops.size(), "stmt too deep");
            Stmt s;
            s.depth = depth;
            s.phase = phase;
            s.computeCycles = compute_cycles;
            _nest->stmts.push_back(std::move(s));
            return _nest->stmts.back();
        }

        /** Append a read reference to @p s. */
        ArrayRef &
        read(Stmt &s, ArrayId arr, AffineExpr row, AffineExpr col)
        {
            return addRef(s, arr, std::move(row), std::move(col), false);
        }

        /** Append a write reference to @p s. */
        ArrayRef &
        write(Stmt &s, ArrayId arr, AffineExpr row, AffineExpr col)
        {
            return addRef(s, arr, std::move(row), std::move(col), true);
        }

      private:
        friend class KernelBuilder;
        NestBuilder(KernelBuilder *parent, LoopNest *nest)
            : _parent(parent), _nest(nest)
        {}

        ArrayRef &
        addRef(Stmt &s, ArrayId arr, AffineExpr row, AffineExpr col,
               bool is_write)
        {
            ArrayRef ref;
            ref.array = arr;
            ref.rowExpr = std::move(row);
            ref.colExpr = std::move(col);
            ref.isWrite = is_write;
            ref.refId = ++_parent->_nextRefId;
            s.refs.push_back(std::move(ref));
            return s.refs.back();
        }

        KernelBuilder *_parent;
        LoopNest *_nest;
    };

    /** Start a new nest appended after existing ones. */
    NestBuilder
    nest(std::string name)
    {
        LoopNest n;
        n.name = std::move(name);
        _kernel.nests.push_back(std::move(n));
        return NestBuilder(this, &_kernel.nests.back());
    }

    /** Finish: validates and returns the kernel. */
    Kernel
    build()
    {
        _kernel.validate();
        return std::move(_kernel);
    }

  private:
    Kernel _kernel;
    std::uint32_t _nextRefId = 0;
};

} // namespace mda::compiler

#endif // MDA_COMPILER_IR_HH
