/**
 * @file
 * Row/column vectorization planning (paper Section V).
 *
 * A statement at the deepest level of its nest is vectorized (width 8,
 * one cache line of 64-bit words) when every reference either does not
 * move with the innermost loop (broadcast/reduction operand) or moves
 * with unit coefficient along a single array dimension:
 *
 *  - unit stride in the column subscript => a row vector access;
 *  - unit stride in the row subscript    => a column vector access,
 *    legal only when the MDA-compliant tiled layout is in use and the
 *    target hierarchy supports column transfers (the paper's key
 *    extension over conventional vectorizers, which would have to
 *    gather column elements through memory).
 *
 * The baseline (1P1L) compilation therefore leaves column-traversing
 * statements scalar, exactly as state-of-the-art compilers do.
 */

#ifndef MDA_COMPILER_VECTORIZER_HH
#define MDA_COMPILER_VECTORIZER_HH

#include <vector>

#include "direction.hh"
#include "ir.hh"

namespace mda::compiler
{

/** Vectorization options. */
struct VectorizeOptions
{
    /** Master enable; false leaves everything scalar. */
    bool enable = true;

    /** Allow column-direction vector accesses (MDA hierarchies with
     *  tiled layout only). */
    bool allowColumnVectors = true;
};

/** Plan: which statements execute as width-8 SIMD. */
struct VectorPlan
{
    /** vectorized[nest][stmt] — parallel to Kernel::nests/stmts. */
    std::vector<std::vector<bool>> vectorized;

    /** SIMD width (fixed at one line of words). */
    static constexpr unsigned width = lineWords;

    bool
    isVectorized(std::size_t nest, std::size_t stmt) const
    {
        return vectorized[nest][stmt];
    }
};

/** Whether @p stmt of @p nest can be vectorized along its loop. */
inline bool
stmtVectorizable(const LoopNest &nest, const Stmt &stmt,
                 const VectorizeOptions &opts)
{
    // Only statements in the deepest loop body vectorize; shallower
    // statements would require unroll-and-jam, which the paper's
    // compiler support does not assume.
    if (stmt.depth + 1 != nest.loops.size())
        return false;
    if (!stmt.vectorizable)
        return false; // predicated/irregular body
    const Loop &inner = nest.loops[stmt.depth];
    if (inner.values)
        return false; // irregular iteration (e.g. HTAP transactions)
    LoopId lid = inner.id;
    for (const auto &ref : stmt.refs) {
        switch (classifyRef(ref, lid)) {
          case AccessDirection::Invariant:
            break; // broadcast operand, fine
          case AccessDirection::RowWise:
            if (ref.colExpr.coeffOf(lid) != 1)
                return false; // non-unit stride along the row
            break;
          case AccessDirection::ColWise:
            if (!opts.allowColumnVectors)
                return false;
            if (ref.rowExpr.coeffOf(lid) != 1)
                return false;
            break;
          case AccessDirection::Mixed:
            return false; // diagonal walk
        }
    }
    return true;
}

/** Plan vectorization for a whole kernel. */
inline VectorPlan
planVectorization(const Kernel &kernel, const VectorizeOptions &opts)
{
    VectorPlan plan;
    plan.vectorized.resize(kernel.nests.size());
    for (std::size_t n = 0; n < kernel.nests.size(); ++n) {
        const LoopNest &nest = kernel.nests[n];
        plan.vectorized[n].resize(nest.stmts.size(), false);
        if (!opts.enable)
            continue;
        for (std::size_t s = 0; s < nest.stmts.size(); ++s) {
            plan.vectorized[n][s] =
                stmtVectorizable(nest, nest.stmts[s], opts);
        }
    }
    return plan;
}

} // namespace mda::compiler

#endif // MDA_COMPILER_VECTORIZER_HH
