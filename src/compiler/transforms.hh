/**
 * @file
 * Loop transformations beyond vectorization.
 *
 * tileLoop() implements the strip-mine-and-sink transform behind the
 * paper's proposed future work (Section X): iteration-space tiling
 * whose tile size matches the 2-D block geometry, so blocked reuse
 * lines up with what a 2P2L cache (or the 1P2L line pair) holds.
 */

#ifndef MDA_COMPILER_TRANSFORMS_HH
#define MDA_COMPILER_TRANSFORMS_HH

#include "ir.hh"

namespace mda::compiler
{

/**
 * Strip-mine loop @p depth of nest @p nest_idx by @p factor and sink
 * the point loop to position @p sink_pos.
 *
 * The original loop becomes the *strip* loop (iterating trip/factor
 * times, keeping its id); a new *point* loop of @p factor iterations
 * is inserted at @p sink_pos. Every affine expression referencing the
 * original variable v is rewritten as lo + factor*strip + point.
 *
 * Restrictions (checked, fatal on violation):
 *  - the loop has constant bounds and a trip count divisible by
 *    @p factor, and no explicit value list;
 *  - no other loop's bounds reference it;
 *  - statements shallower than the sink position that reference v
 *    must sit directly above it (they are sunk under the point loop);
 *    anything else is unsupported.
 *
 * @return The id of the new point loop.
 */
LoopId tileLoop(Kernel &kernel, std::size_t nest_idx, unsigned depth,
                unsigned sink_pos, std::int64_t factor);

} // namespace mda::compiler

#endif // MDA_COMPILER_TRANSFORMS_HH
