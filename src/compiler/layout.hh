/**
 * @file
 * Memory layouts: the target of the MDA-compliant padding transform.
 *
 * RowMajorLayout is the conventional 1-D-optimized layout (row pitch
 * padded to a whole number of cache lines). TiledLayout is the
 * MDA-compliant layout of Section V: both dimensions are padded to the
 * 8x8-word tile geometry and elements are stored tile-by-tile, so that
 * the eight elements X[8a..8a+7][j] of any aligned logical column land
 * in one physical column line of one 512-byte tile — the property the
 * paper's intra-array padding establishes ("two data elements that map
 * to the same column ... need also map to the same column in the MDA
 * memory structure").
 */

#ifndef MDA_COMPILER_LAYOUT_HH
#define MDA_COMPILER_LAYOUT_HH

#include <cstdint>
#include <memory>

#include "sim/logging.hh"
#include "sim/orientation.hh"
#include "sim/types.hh"

namespace mda::compiler
{

/** Which layout family an array uses. */
enum class LayoutKind : std::uint8_t
{
    RowMajor1D,  ///< Conventional, 1-D-optimized (pitch padded to 64 B).
    Tiled2D,     ///< MDA-compliant 8x8-word tiles.
};

/** Maps logical (row, col) element coordinates to byte addresses. */
class Layout
{
  public:
    Layout(Addr base, std::int64_t rows, std::int64_t cols)
        : _base(base), _rows(rows), _cols(cols)
    {
        mda_assert((base & (tileBytes - 1)) == 0,
                   "array base must be tile aligned");
    }

    virtual ~Layout() = default;

    /** Byte address of element (row, col). */
    virtual Addr elementAddr(std::int64_t row, std::int64_t col) const = 0;

    /** Total padded footprint in bytes. */
    virtual std::uint64_t footprintBytes() const = 0;

    virtual LayoutKind kind() const = 0;

    Addr base() const { return _base; }
    std::int64_t rows() const { return _rows; }
    std::int64_t cols() const { return _cols; }

  protected:
    Addr _base;
    std::int64_t _rows;
    std::int64_t _cols;
};

/** Conventional row-major with the pitch padded to full cache lines. */
class RowMajorLayout : public Layout
{
  public:
    RowMajorLayout(Addr base, std::int64_t rows, std::int64_t cols)
        : Layout(base, rows, cols),
          _pitch(alignUp(static_cast<Addr>(cols) * wordBytes, lineBytes))
    {}

    Addr
    elementAddr(std::int64_t row, std::int64_t col) const override
    {
        mda_assert(row >= 0 && row < _rows && col >= 0 && col < _cols,
                   "element out of bounds");
        return _base + static_cast<Addr>(row) * _pitch +
               static_cast<Addr>(col) * wordBytes;
    }

    std::uint64_t
    footprintBytes() const override
    {
        return static_cast<std::uint64_t>(_rows) * _pitch;
    }

    LayoutKind kind() const override { return LayoutKind::RowMajor1D; }

    /** Row pitch in bytes (after line padding). */
    Addr pitch() const { return _pitch; }

  private:
    Addr _pitch;
};

/** MDA-compliant tiled layout: 8x8-word tiles stored row-of-tiles
 *  major; both dimensions padded up to multiples of 8 elements. */
class TiledLayout : public Layout
{
  public:
    TiledLayout(Addr base, std::int64_t rows, std::int64_t cols)
        : Layout(base, rows, cols),
          _tileRows((rows + tileLines - 1) / tileLines),
          _tileCols((cols + lineWords - 1) / lineWords)
    {}

    Addr
    elementAddr(std::int64_t row, std::int64_t col) const override
    {
        mda_assert(row >= 0 && row < _rows && col >= 0 && col < _cols,
                   "element out of bounds");
        std::int64_t ti = row / tileLines, fi = row % tileLines;
        std::int64_t tj = col / lineWords, fj = col % lineWords;
        std::int64_t tile = ti * _tileCols + tj;
        return _base + static_cast<Addr>(tile) * tileBytes +
               static_cast<Addr>(fi) * lineBytes +
               static_cast<Addr>(fj) * wordBytes;
    }

    std::uint64_t
    footprintBytes() const override
    {
        return static_cast<std::uint64_t>(_tileRows) * _tileCols *
               tileBytes;
    }

    LayoutKind kind() const override { return LayoutKind::Tiled2D; }

    std::int64_t tileRows() const { return _tileRows; }
    std::int64_t tileCols() const { return _tileCols; }

  private:
    std::int64_t _tileRows;
    std::int64_t _tileCols;
};

/** Construct a layout of the requested kind. */
inline std::unique_ptr<Layout>
makeLayout(LayoutKind kind, Addr base, std::int64_t rows,
           std::int64_t cols)
{
    if (kind == LayoutKind::RowMajor1D)
        return std::make_unique<RowMajorLayout>(base, rows, cols);
    return std::make_unique<TiledLayout>(base, rows, cols);
}

} // namespace mda::compiler

#endif // MDA_COMPILER_LAYOUT_HH
