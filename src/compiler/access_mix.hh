/**
 * @file
 * Access orientation/size mix analysis (reproduces paper Fig. 10).
 *
 * Runs a compiled kernel's trace and tallies data volume into the four
 * categories the paper plots: {row, column} x {scalar, vector}.
 */

#ifndef MDA_COMPILER_ACCESS_MIX_HH
#define MDA_COMPILER_ACCESS_MIX_HH

#include <cstdint>

#include "trace_gen.hh"

namespace mda::compiler
{

/** Byte totals per access category. */
struct AccessMix
{
    std::uint64_t rowScalar = 0;
    std::uint64_t rowVector = 0;
    std::uint64_t colScalar = 0;
    std::uint64_t colVector = 0;

    std::uint64_t
    total() const
    {
        return rowScalar + rowVector + colScalar + colVector;
    }

    double
    fraction(std::uint64_t part) const
    {
        return total() ? static_cast<double>(part) / total() : 0.0;
    }

    void
    record(const TraceOp &op)
    {
        std::uint64_t bytes = op.bytes();
        if (op.orient == Orientation::Row) {
            (op.isVector ? rowVector : rowScalar) += bytes;
        } else {
            (op.isVector ? colVector : colScalar) += bytes;
        }
    }
};

/** Walk the whole kernel and classify every access by data volume. */
inline AccessMix
measureAccessMix(const CompiledKernel &ck)
{
    TraceGenerator gen(ck);
    AccessMix mix;
    TraceOp op;
    while (gen.next(op))
        mix.record(op);
    return mix;
}

} // namespace mda::compiler

#endif // MDA_COMPILER_ACCESS_MIX_HH
